#include "src/common/mathutil.h"

#include <gtest/gtest.h>

#include <climits>
#include <cmath>
#include <vector>

namespace pronghorn {
namespace {

double Sum(const std::vector<double>& v) {
  double s = 0;
  for (double x : v) {
    s += x;
  }
  return s;
}

TEST(SoftmaxTest, SumsToOne) {
  const std::vector<double> logits = {1.0, 2.0, 3.0};
  const auto probs = Softmax(logits);
  ASSERT_EQ(probs.size(), 3u);
  EXPECT_NEAR(Sum(probs), 1.0, 1e-12);
}

TEST(SoftmaxTest, MonotoneInLogits) {
  const auto probs = Softmax(std::vector<double>{1.0, 2.0, 3.0});
  EXPECT_LT(probs[0], probs[1]);
  EXPECT_LT(probs[1], probs[2]);
}

TEST(SoftmaxTest, UniformForEqualLogits) {
  const auto probs = Softmax(std::vector<double>{5.0, 5.0, 5.0, 5.0});
  for (double p : probs) {
    EXPECT_NEAR(p, 0.25, 1e-12);
  }
}

TEST(SoftmaxTest, StableForHugeLogits) {
  // The policy feeds inverse-latency weights that can reach 1/mu = 1e6;
  // naive exp() would overflow.
  const auto probs = Softmax(std::vector<double>{1e6, 1e6 - 1.0, 10.0});
  EXPECT_TRUE(std::isfinite(probs[0]));
  EXPECT_NEAR(Sum(probs), 1.0, 1e-12);
  EXPECT_GT(probs[0], probs[1]);
  EXPECT_NEAR(probs[2], 0.0, 1e-9);
}

TEST(SoftmaxTest, EveryElementStrictlyPositive) {
  const auto probs = Softmax(std::vector<double>{100.0, 0.0, -50.0});
  for (double p : probs) {
    EXPECT_GT(p, 0.0);
  }
}

TEST(SoftmaxTest, TemperatureFlattens) {
  const std::vector<double> logits = {1.0, 3.0};
  const auto sharp = Softmax(logits, 0.5);
  const auto flat = Softmax(logits, 10.0);
  EXPECT_GT(sharp[1] - sharp[0], flat[1] - flat[0]);
}

TEST(SoftmaxTest, NonPositiveTemperatureFallsBackToOne) {
  const std::vector<double> logits = {1.0, 2.0};
  EXPECT_EQ(Softmax(logits, -1.0), Softmax(logits, 1.0));
}

TEST(SoftmaxTest, EmptyInput) { EXPECT_TRUE(Softmax({}).empty()); }

TEST(SoftmaxTest, SingleElementIsCertain) {
  const auto probs = Softmax(std::vector<double>{42.0});
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_DOUBLE_EQ(probs[0], 1.0);
}

TEST(EwmaTest, BlendsWithAlpha) {
  EXPECT_DOUBLE_EQ(EwmaUpdate(10.0, 20.0, 0.3), 0.3 * 20.0 + 0.7 * 10.0);
}

TEST(EwmaTest, AlphaOneReplaces) { EXPECT_DOUBLE_EQ(EwmaUpdate(10.0, 20.0, 1.0), 20.0); }

TEST(EwmaTest, ConvergesToConstantSignal) {
  double value = 100.0;
  for (int i = 0; i < 200; ++i) {
    value = EwmaUpdate(value, 5.0, 0.3);
  }
  EXPECT_NEAR(value, 5.0, 1e-6);
}

TEST(InverseWeightTest, UnexploredDominates) {
  const double mu = 1e-6;
  EXPECT_GT(InverseWeight(0.0, mu), InverseWeight(0.001, mu) * 100);
}

TEST(InverseWeightTest, DecreasingInValue) {
  EXPECT_GT(InverseWeight(0.1, 1e-6), InverseWeight(0.2, 1e-6));
}

TEST(GeometricMeanTest, Basics) {
  EXPECT_DOUBLE_EQ(GeometricMean(std::vector<double>{4.0, 9.0}), 6.0);
  EXPECT_DOUBLE_EQ(GeometricMean(std::vector<double>{7.0}), 7.0);
  EXPECT_DOUBLE_EQ(GeometricMean({}), 0.0);
}

TEST(GeometricMeanTest, IgnoresNonPositive) {
  EXPECT_DOUBLE_EQ(GeometricMean(std::vector<double>{4.0, 9.0, 0.0, -3.0}), 6.0);
}

TEST(MeanTest, Basics) {
  EXPECT_DOUBLE_EQ(Mean(std::vector<double>{1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
}

TEST(ClampTest, Basics) {
  EXPECT_DOUBLE_EQ(Clamp(5.0, 0.0, 10.0), 5.0);
  EXPECT_DOUBLE_EQ(Clamp(-5.0, 0.0, 10.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(15.0, 0.0, 10.0), 10.0);
}

TEST(NormalQuantileTest, KnownValues) {
  EXPECT_NEAR(NormalQuantile(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalQuantile(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantile(0.8413447), 1.0, 1e-4);
}

TEST(NormalQuantileTest, SymmetricAroundMedian) {
  for (double p : {0.6, 0.75, 0.9, 0.99}) {
    EXPECT_NEAR(NormalQuantile(p), -NormalQuantile(1.0 - p), 1e-9);
  }
}

TEST(NormalQuantileTest, MonotoneIncreasing) {
  double prev = NormalQuantile(0.001);
  for (double p = 0.01; p < 1.0; p += 0.01) {
    const double q = NormalQuantile(p);
    EXPECT_GT(q, prev);
    prev = q;
  }
}

TEST(NormalQuantileTest, ExtremesAreFinite) {
  EXPECT_TRUE(std::isfinite(NormalQuantile(0.0)));
  EXPECT_TRUE(std::isfinite(NormalQuantile(1.0)));
  EXPECT_LT(NormalQuantile(1e-10), -6.0);
  EXPECT_GT(NormalQuantile(1.0 - 1e-10), 6.0);
}

TEST(CappedExponentialBackoffTest, MatchesUncappedBelowCap) {
  const Duration base = Duration::Millis(10);
  const Duration cap = Duration::Seconds(60);
  for (int attempt = 0; attempt < 12; ++attempt) {
    const Duration expected = base * std::pow(2.0, attempt);
    EXPECT_EQ(CappedExponentialBackoff(base, 2.0, attempt, cap).ToMicros(),
              expected.ToMicros())
        << "attempt " << attempt;
  }
}

TEST(CappedExponentialBackoffTest, SaturatesAtCapForHighAttempts) {
  const Duration base = Duration::Millis(10);
  const Duration cap = Duration::Seconds(60);
  // With multiplier 2.0 the naive Duration multiply overflows int64
  // microseconds near attempt 50; every attempt from there to INT_MAX must
  // return the cap exactly — never a negative or wrapped duration.
  for (const int attempt : {64, 100, 1000, 100000, INT_MAX}) {
    EXPECT_EQ(CappedExponentialBackoff(base, 2.0, attempt, cap).ToMicros(),
              cap.ToMicros())
        << "attempt " << attempt;
  }
}

TEST(CappedExponentialBackoffTest, MonotoneNonDecreasingAndNeverNegative) {
  const Duration base = Duration::Micros(500);
  const Duration cap = Duration::Seconds(30);
  Duration prev = Duration::Zero();
  for (int attempt = 0; attempt <= 128; ++attempt) {
    const Duration backoff = CappedExponentialBackoff(base, 2.0, attempt, cap);
    EXPECT_GE(backoff.ToMicros(), 0) << "attempt " << attempt;
    EXPECT_GE(backoff.ToMicros(), prev.ToMicros()) << "attempt " << attempt;
    EXPECT_LE(backoff.ToMicros(), cap.ToMicros()) << "attempt " << attempt;
    prev = backoff;
  }
}

TEST(CappedExponentialBackoffTest, NegativeAttemptTreatedAsZero) {
  const Duration base = Duration::Millis(25);
  const Duration cap = Duration::Seconds(10);
  EXPECT_EQ(CappedExponentialBackoff(base, 2.0, -1, cap).ToMicros(),
            base.ToMicros());
  EXPECT_EQ(CappedExponentialBackoff(base, 2.0, -1000, cap).ToMicros(),
            base.ToMicros());
}

TEST(CappedExponentialBackoffTest, NonFiniteProductsSaturateAtCap) {
  const Duration base = Duration::Millis(1);
  const Duration cap = Duration::Seconds(5);
  // An overflow all the way to +inf (huge multiplier) must route to the cap,
  // not through a Duration-from-inf conversion.
  EXPECT_EQ(CappedExponentialBackoff(base, 1e308, 10, cap).ToMicros(),
            cap.ToMicros());
  EXPECT_EQ(CappedExponentialBackoff(base, 2.0, INT_MAX, cap).ToMicros(),
            cap.ToMicros());
}

}  // namespace
}  // namespace pronghorn
