// Resumable-simulation and streaming-accumulator guarantees:
//
//  1. Streaming-vs-materialized equivalence: the StreamingAccumulator's
//     CRC-combined digest equals ReportDigest over the same reports, in any
//     fold order and any retention mode.
//  2. Resume equivalence: a fleet run killed at a checkpoint boundary and
//     resumed reproduces the uninterrupted run's digest bit-for-bit — at
//     thread counts {1, 2, 8}, with the live service on and off, and under a
//     chaos plan.
//  3. Checkpoint safety: corrupt frames are kDataLoss, a different
//     experiment's frame is kFailedPrecondition, and neither is silently
//     resumed from.
//  4. Serializer round trips: the report deserializers are exact inverses of
//     the canonical serializers (byte-identical re-serialization), and the
//     LatencyHistogram wire format round-trips.

#include "src/platform/sim_checkpoint.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <random>
#include <string>
#include <vector>

#include "src/core/request_centric_policy.h"
#include "src/jit/method_model.h"
#include "src/platform/fleet_simulation.h"
#include "src/platform/report_io.h"
#include "src/platform/simulate.h"

namespace pronghorn {
namespace {

constexpr uint64_t kSeed = 42;
constexpr size_t kFunctions = 6;
constexpr uint64_t kRequests = 120;

PolicyConfig SmallConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 6;
  config.max_checkpoint_request = 30;
  return config;
}

RequestCentricPolicy MakePolicy() {
  auto policy = RequestCentricPolicy::Create(SmallConfig());
  EXPECT_TRUE(policy.ok());
  return *std::move(policy);
}

std::string FreshDir(const std::string& tag) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / ("pronghorn_simckpt_" + tag))
          .string();
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

struct FleetRunConfig {
  uint32_t threads = 1;
  RetentionOptions retention;
  SimCheckpointOptions checkpoint;
  bool service = false;
  bool chaos = false;
};

FleetRunConfig WithThreads(uint32_t threads) {
  FleetRunConfig config;
  config.threads = threads;
  return config;
}

FleetSimulation MakeFleet(const OrchestrationPolicy& policy,
                          const FleetRunConfig& config) {
  SimOptions options;
  options.seed = kSeed;
  options.threads = config.threads;
  options.retention = config.retention;
  options.sim_checkpoint = config.checkpoint;
  options.service.enabled = config.service;
  if (config.chaos) {
    options.faults.get_failure_rate = 0.05;
    options.faults.put_failure_rate = 0.05;
    options.faults.corruption_rate = 0.02;
    options.faults.seed = 7;
  }
  FleetSimulation fleet(WorkloadRegistry::Default(), options);
  const auto evaluation = WorkloadRegistry::Default().EvaluationSet();
  for (size_t i = 0; i < kFunctions; ++i) {
    FleetFunctionSpec spec;
    spec.name = "fn" + std::to_string(i) + "-" +
                evaluation[i % evaluation.size()]->name;
    spec.profile = evaluation[i % evaluation.size()];
    spec.policy = &policy;
    spec.requests = kRequests;
    spec.worker_slots = 3;
    spec.exploring_slots = 1;
    EXPECT_TRUE(fleet.AddFunction(std::move(spec)).ok());
  }
  return fleet;
}

FleetReport MustRun(const OrchestrationPolicy& policy,
                    const FleetRunConfig& config) {
  auto report = MakeFleet(policy, config).Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *std::move(report);
}

// Writes a checkpoint file representing a run killed after folding exactly
// the first `completed` deployments (in the given order) — byte-equivalent
// to the frame FleetCheckpointer would have written at that boundary.
void WritePartialCheckpoint(const std::string& dir, uint64_t fingerprint,
                            const FleetReport& full,
                            std::vector<size_t> fold_order, size_t completed,
                            RetentionOptions retention = RetentionOptions{}) {
  StreamingAccumulator accumulator(retention);
  for (size_t i = 0; i < completed; ++i) {
    const auto& [name, report] = full.per_function[fold_order[i]];
    accumulator.Fold(name, report);
  }
  ByteWriter writer;
  accumulator.SerializeState(writer);
  ASSERT_TRUE(WriteSimCheckpointFile(FleetCheckpointer::FilePath(dir),
                                     fingerprint, completed, writer.data())
                  .ok());
}

// --- 1. Streaming fold == materialized digest -------------------------------

TEST(StreamingAccumulatorTest, DigestMatchesMaterializedInAnyFoldOrder) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport full = MustRun(policy, FleetRunConfig{});
  ASSERT_EQ(full.per_function.size(), kFunctions);

  std::vector<NamedReportRef> rows;
  for (const auto& [name, report] : full.per_function) {
    rows.push_back(NamedReportRef{name, &report});
  }
  const uint32_t materialized = ReportDigest(rows, full);

  std::vector<size_t> order(kFunctions);
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = i;
  }
  std::mt19937 shuffler(7);
  for (int trial = 0; trial < 5; ++trial) {
    std::shuffle(order.begin(), order.end(), shuffler);
    for (const RetentionOptions retention :
         {RetentionOptions{},
          RetentionOptions{ReportRetention::kTopLatency, 2, 1},
          RetentionOptions{ReportRetention::kReservoir, 2, 9}}) {
      StreamingAccumulator accumulator(retention);
      for (const size_t i : order) {
        const auto& [name, report] = full.per_function[i];
        accumulator.Fold(name, report);
      }
      EXPECT_EQ(accumulator.Digest(), materialized)
          << "retention " << RetentionLabel(retention.mode);
    }
  }
}

TEST(StreamingAccumulatorTest, KeepAllRetainsEveryReportBitForBit) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport full = MustRun(policy, FleetRunConfig{});
  StreamingAccumulator accumulator{RetentionOptions{}};
  // Fold in reverse order; keep-all assembly must still be canonical.
  for (size_t i = full.per_function.size(); i-- > 0;) {
    const auto& [name, report] = full.per_function[i];
    accumulator.Fold(name, report);
  }
  StreamingAccumulator::Merged merged = accumulator.Take();
  ASSERT_EQ(merged.retained.size(), kFunctions);
  size_t index = 0;
  for (const auto& [name, report] : merged.retained) {
    EXPECT_EQ(name, full.per_function[index].function);
    EXPECT_EQ(ClusterReportCrc32(report),
              ClusterReportCrc32(full.per_function[index].report));
    ++index;
  }
  EXPECT_EQ(merged.digest, full.Digest());
}

TEST(StreamingAccumulatorTest, BoundedRetentionIsFoldOrderInsensitive) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport full = MustRun(policy, FleetRunConfig{});
  for (const RetentionOptions retention :
       {RetentionOptions{ReportRetention::kTopLatency, 3, 1},
        RetentionOptions{ReportRetention::kReservoir, 3, 5}}) {
    std::vector<std::string> first_names;
    std::vector<size_t> order(kFunctions);
    for (size_t i = 0; i < order.size(); ++i) {
      order[i] = i;
    }
    std::mt19937 shuffler(11);
    for (int trial = 0; trial < 4; ++trial) {
      std::shuffle(order.begin(), order.end(), shuffler);
      StreamingAccumulator accumulator(retention);
      for (const size_t i : order) {
        const auto& [name, report] = full.per_function[i];
        accumulator.Fold(name, report);
      }
      StreamingAccumulator::Merged merged = accumulator.Take();
      EXPECT_LE(merged.retained.size(), retention.k);
      EXPECT_EQ(merged.functions_total, kFunctions);
      std::vector<std::string> names;
      for (const auto& [name, report] : merged.retained) {
        names.push_back(name);
      }
      if (trial == 0) {
        first_names = names;
      } else {
        EXPECT_EQ(names, first_names)
            << "retained set depends on fold order under "
            << RetentionLabel(retention.mode);
      }
    }
  }
}

TEST(FleetRetentionTest, BoundedModesReportTheKeepAllDigest) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport keep_all = MustRun(policy, FleetRunConfig{});

  FleetRunConfig bounded;
  bounded.threads = 4;
  bounded.retention = RetentionOptions{ReportRetention::kTopLatency, 2, 1};
  const FleetReport top = MustRun(policy, bounded);
  EXPECT_EQ(top.Digest(), keep_all.Digest());
  EXPECT_EQ(top.retention, ReportRetention::kTopLatency);
  EXPECT_LE(top.per_function.size(), 2u);
  EXPECT_EQ(top.functions_total, kFunctions);
  EXPECT_EQ(top.invocations_total, kFunctions * kRequests);
  EXPECT_EQ(top.latency_hist.count(), kFunctions * kRequests);
  // The retained subset must be the K slowest by median latency: every kept
  // function's median is >= every dropped one's.
  double kept_min = 1e300;
  for (const auto& [name, report] : top.per_function) {
    kept_min = std::min(kept_min, report.LatencySummary().Median());
  }
  for (const auto& [name, report] : keep_all.per_function) {
    if (top.Find(name) == nullptr) {
      EXPECT_LE(report.LatencySummary().Median(), kept_min) << name;
    }
  }

  bounded.retention = RetentionOptions{ReportRetention::kReservoir, 3, 9};
  const FleetReport reservoir = MustRun(policy, bounded);
  EXPECT_EQ(reservoir.Digest(), keep_all.Digest());
  EXPECT_LE(reservoir.per_function.size(), 3u);
  // Exact-merge histogram agrees between modes (it is complete in both).
  EXPECT_EQ(reservoir.latency_hist.count(), keep_all.latency_hist.count());
  EXPECT_EQ(reservoir.latency_hist.Quantile(50), keep_all.latency_hist.Quantile(50));
}

// --- 2. Resume equivalence --------------------------------------------------

TEST(SimCheckpointTest, ResumedFleetReproducesUninterruptedDigest) {
  const RequestCentricPolicy policy = MakePolicy();
  for (const uint32_t threads : {1u, 2u, 8u}) {
    const FleetRunConfig base = WithThreads(threads);
    const FleetReport full = MustRun(policy, base);
    const uint64_t fingerprint = MakeFleet(policy, base).Fingerprint();

    // Kill at every checkpoint boundary 0..kFunctions and resume.
    std::vector<size_t> fold_order(kFunctions);
    for (size_t i = 0; i < fold_order.size(); ++i) {
      fold_order[i] = (i + threads) % kFunctions;  // Not name order.
    }
    for (size_t completed = 0; completed <= kFunctions; ++completed) {
      const std::string dir =
          FreshDir("resume_t" + std::to_string(threads) + "_c" +
                   std::to_string(completed));
      WritePartialCheckpoint(dir, fingerprint, full, fold_order, completed);
      FleetRunConfig resumed_config = base;
      resumed_config.checkpoint.dir = dir;
      resumed_config.checkpoint.resume = true;
      const FleetReport resumed = MustRun(policy, resumed_config);
      EXPECT_EQ(resumed.Digest(), full.Digest())
          << "threads=" << threads << " completed=" << completed;
      EXPECT_EQ(resumed.per_function.size(), full.per_function.size());
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(SimCheckpointTest, ResumeEquivalenceHoldsWithServiceAndChaos) {
  const RequestCentricPolicy policy = MakePolicy();
  for (const bool service : {false, true}) {
    for (const bool chaos : {false, true}) {
      FleetRunConfig base;
      base.threads = 4;
      base.service = service;
      base.chaos = chaos;
      const FleetReport full = MustRun(policy, base);
      const uint64_t fingerprint = MakeFleet(policy, base).Fingerprint();

      const std::string dir = FreshDir(std::string("svc_") +
                                       (service ? "on" : "off") +
                                       (chaos ? "_chaos" : "_clean"));
      std::vector<size_t> fold_order(kFunctions);
      for (size_t i = 0; i < fold_order.size(); ++i) {
        fold_order[i] = kFunctions - 1 - i;
      }
      WritePartialCheckpoint(dir, fingerprint, full, fold_order,
                             kFunctions / 2);
      FleetRunConfig resumed_config = base;
      resumed_config.checkpoint.dir = dir;
      resumed_config.checkpoint.resume = true;
      const FleetReport resumed = MustRun(policy, resumed_config);
      EXPECT_EQ(resumed.Digest(), full.Digest())
          << "service=" << service << " chaos=" << chaos;
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(SimCheckpointTest, CheckpointingRunWritesResumableFinalFrame) {
  // A full checkpointed run leaves a final frame covering everything; a
  // resume from it re-runs nothing and reproduces the digest.
  const RequestCentricPolicy policy = MakePolicy();
  const std::string dir = FreshDir("final_frame");
  FleetRunConfig config;
  config.threads = 2;
  config.checkpoint.dir = dir;
  config.checkpoint.every = 2;
  const FleetReport checkpointed = MustRun(policy, config);
  const FleetReport plain = MustRun(policy, WithThreads(2));
  EXPECT_EQ(checkpointed.Digest(), plain.Digest());
  ASSERT_TRUE(std::filesystem::exists(FleetCheckpointer::FilePath(dir)));

  config.checkpoint.resume = true;
  const FleetReport resumed = MustRun(policy, config);
  EXPECT_EQ(resumed.Digest(), plain.Digest());
  std::filesystem::remove_all(dir);
}

TEST(SimCheckpointTest, WholeRunCheckpointRoundTripsSingleTopology) {
  const RequestCentricPolicy policy = MakePolicy();
  const auto evaluation = WorkloadRegistry::Default().EvaluationSet();
  SimFunctionSpec spec;
  spec.name = evaluation[0]->name;
  spec.profile = evaluation[0];
  spec.policy = &policy;
  spec.requests = 150;

  SimOptions options;
  options.seed = kSeed;
  options.worker_slots = 1;
  options.exploring_slots = 1;
  auto plain = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                        std::span<const SimFunctionSpec>(&spec, 1), options);
  ASSERT_TRUE(plain.ok()) << plain.status().ToString();

  const std::string dir = FreshDir("whole_run");
  options.sim_checkpoint.dir = dir;
  auto first = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                        std::span<const SimFunctionSpec>(&spec, 1), options);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  EXPECT_EQ(first->Digest(), plain->Digest());
  ASSERT_TRUE(std::filesystem::exists(WholeRunCheckpointPath(dir)));

  options.sim_checkpoint.resume = true;
  auto resumed = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                          std::span<const SimFunctionSpec>(&spec, 1), options);
  ASSERT_TRUE(resumed.ok()) << resumed.status().ToString();
  EXPECT_EQ(resumed->Digest(), plain->Digest());
  EXPECT_EQ(resumed->latency.count(), plain->latency.count());
  EXPECT_EQ(resumed->invocations_total, plain->invocations_total);
  std::filesystem::remove_all(dir);
}

// --- 3. Checkpoint safety ---------------------------------------------------

TEST(SimCheckpointTest, CorruptCheckpointFailsLoudly) {
  const RequestCentricPolicy policy = MakePolicy();
  const std::string dir = FreshDir("corrupt");
  FleetRunConfig config;
  config.checkpoint.dir = dir;
  (void)MustRun(policy, config);

  const std::string path = FleetCheckpointer::FilePath(dir);
  {
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    ASSERT_TRUE(file.good());
    file.seekp(10);
    file.put(static_cast<char>(0x5a));
  }
  config.checkpoint.resume = true;
  auto resumed = MakeFleet(policy, config).Run();
  ASSERT_FALSE(resumed.ok());
  EXPECT_EQ(resumed.status().code(), StatusCode::kDataLoss);
  std::filesystem::remove_all(dir);
}

TEST(SimCheckpointTest, DifferentExperimentCheckpointIsRefused) {
  const std::string dir = FreshDir("fingerprint");
  const std::vector<uint8_t> payload = {1, 2, 3};
  ASSERT_TRUE(WriteSimCheckpointFile(FleetCheckpointer::FilePath(dir),
                                     /*fingerprint=*/111, /*progress=*/0,
                                     payload)
                  .ok());
  auto read = ReadSimCheckpointFile(FleetCheckpointer::FilePath(dir),
                                    /*fingerprint=*/222);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kFailedPrecondition);
  // The matching fingerprint reads fine.
  auto ok_read = ReadSimCheckpointFile(FleetCheckpointer::FilePath(dir),
                                       /*fingerprint=*/111);
  ASSERT_TRUE(ok_read.ok());
  EXPECT_EQ(*ok_read, payload);
  std::filesystem::remove_all(dir);
}

TEST(SimCheckpointTest, MissingCheckpointIsNotFound) {
  auto read = ReadSimCheckpointFile("/nonexistent-dir/nope.ckpt", 1);
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kNotFound);
}

TEST(SimCheckpointTest, FingerprintPinsExperimentParameters) {
  const RequestCentricPolicy policy = MakePolicy();
  const uint64_t base = MakeFleet(policy, FleetRunConfig{}).Fingerprint();
  EXPECT_EQ(base, MakeFleet(policy, FleetRunConfig{}).Fingerprint());
  // Thread count is NOT part of the identity (digests are thread-invariant)…
  EXPECT_EQ(base, MakeFleet(policy, WithThreads(8)).Fingerprint());
  // …but chaos and retention are (they change what the run means).
  FleetRunConfig chaos;
  chaos.chaos = true;
  EXPECT_NE(base, MakeFleet(policy, chaos).Fingerprint());
  FleetRunConfig bounded;
  bounded.retention = RetentionOptions{ReportRetention::kTopLatency, 2, 1};
  EXPECT_NE(base, MakeFleet(policy, bounded).Fingerprint());
}

// --- 4. Serializer round trips ----------------------------------------------

TEST(ReportSerializationTest, ClusterReportRoundTripsByteIdentically) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport full = MustRun(policy, FleetRunConfig{});
  for (const auto& [name, report] : full.per_function) {
    ByteWriter writer;
    SerializeClusterReport(report, writer);
    ByteReader reader(writer.data());
    auto restored = DeserializeClusterReport(reader);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_TRUE(reader.AtEnd());
    ByteWriter rewritten;
    SerializeClusterReport(*restored, rewritten);
    EXPECT_EQ(writer.data(), rewritten.data()) << name;
  }
}

TEST(ReportSerializationTest, ReportCoreRoundTripsByteIdentically) {
  const RequestCentricPolicy policy = MakePolicy();
  FleetRunConfig config;
  config.chaos = true;  // Nonzero fault counters exercise every field.
  const FleetReport full = MustRun(policy, config);
  ByteWriter writer;
  SerializeReportCore(full, writer);
  ByteReader reader(writer.data());
  ReportCore restored;
  ASSERT_TRUE(DeserializeReportCore(reader, restored).ok());
  EXPECT_TRUE(reader.AtEnd());
  ByteWriter rewritten;
  SerializeReportCore(restored, rewritten);
  EXPECT_EQ(writer.data(), rewritten.data());
}

TEST(ReportSerializationTest, LatencyHistogramRoundTrips) {
  LatencyHistogram hist;
  hist.Add(0);
  hist.Add(1);
  hist.Add(17);
  hist.AddCount(12345, 41);
  hist.AddCount(1ull << 40, 3);
  ByteWriter writer;
  hist.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = LatencyHistogram::Deserialize(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(*restored, hist);
  EXPECT_EQ(restored->count(), hist.count());
  EXPECT_EQ(restored->max(), hist.max());
  EXPECT_EQ(restored->Quantile(50), hist.Quantile(50));
}

TEST(ReportSerializationTest, AccumulatorStateRoundTripsAcrossRetentions) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport full = MustRun(policy, FleetRunConfig{});
  for (const RetentionOptions retention :
       {RetentionOptions{},
        RetentionOptions{ReportRetention::kTopLatency, 2, 1},
        RetentionOptions{ReportRetention::kReservoir, 2, 9}}) {
    StreamingAccumulator original(retention);
    for (size_t i = 0; i < 4; ++i) {
      const auto& [name, report] = full.per_function[i];
      original.Fold(name, report);
    }
    ByteWriter writer;
    original.SerializeState(writer);

    StreamingAccumulator restored(retention);
    ByteReader reader(writer.data());
    ASSERT_TRUE(restored.RestoreState(reader).ok());
    EXPECT_TRUE(reader.AtEnd());
    EXPECT_EQ(restored.folded_count(), original.folded_count());
    EXPECT_EQ(restored.Digest(), original.Digest());
    // Folding the remaining shards into the restored accumulator must land
    // exactly where the uninterrupted accumulator lands.
    StreamingAccumulator uninterrupted(retention);
    for (const auto& [name, report] : full.per_function) {
      uninterrupted.Fold(name, report);
    }
    for (size_t i = 4; i < full.per_function.size(); ++i) {
      const auto& [name, report] = full.per_function[i];
      restored.Fold(name, report);
    }
    EXPECT_EQ(restored.Digest(), uninterrupted.Digest());
  }
}

TEST(ReportSerializationTest, RestoreRefusesMismatchedRetention) {
  StreamingAccumulator original(RetentionOptions{});
  ByteWriter writer;
  original.SerializeState(writer);
  StreamingAccumulator other(
      RetentionOptions{ReportRetention::kTopLatency, 2, 1});
  ByteReader reader(writer.data());
  auto status = other.RestoreState(reader);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST(MethodStateTest, WidenedCountersRoundTripPast32Bits) {
  // Regression for the uint32 -> uint64 widening: a deopt count past 2^32
  // must survive serialization (the varint wire format never truncated, the
  // in-memory fields used to).
  MethodState method;
  method.weight = 0.25;
  method.tier = CompilationTier::kOptimized;
  method.invocations = (1ull << 33) + 17;
  method.deopt_count = (1ull << 32) + 5;
  method.compile_remaining = (1ull << 32) + 1;
  method.baseline_threshold = 2;
  method.optimize_threshold = 100;
  ByteWriter writer;
  method.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = MethodState::Deserialize(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, method);
  EXPECT_EQ(restored->deopt_count, (1ull << 32) + 5);
  EXPECT_EQ(restored->compile_remaining, (1ull << 32) + 1);
}

}  // namespace
}  // namespace pronghorn
