#include "src/platform/platform_simulation.h"

#include <gtest/gtest.h>

#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/trace/trace_generator.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  return config;
}

InvocationTrace MakeTrace() {
  InvocationTrace trace;
  // Interleaved invocations of two functions, 1s apart, with a long gap in
  // the middle that exceeds a 60s idle timeout.
  int64_t t = 0;
  for (int burst = 0; burst < 2; ++burst) {
    for (int i = 0; i < 6; ++i) {
      EXPECT_TRUE(
          trace.Append({i % 2 == 0 ? "MST" : "DynamicHTML", TimePoint::FromMicros(t)})
              .ok());
      t += 1000000;
    }
    t += 120 * 1000000LL;  // 2-minute gap.
  }
  return trace;
}

TEST(PlatformSimulationTest, RejectsDuplicateDeployments) {
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  PlatformSimulation platform(WorkloadRegistry::Default(), eviction,
                              SimOptions{});
  const ColdStartPolicy policy;
  ASSERT_TRUE(platform.DeployFunction(Profile("MST"), policy).ok());
  EXPECT_EQ(platform.DeployFunction(Profile("MST"), policy).code(),
            StatusCode::kAlreadyExists);
}

TEST(PlatformSimulationTest, RejectsUndeployedFunctionInTrace) {
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  PlatformSimulation platform(WorkloadRegistry::Default(), eviction,
                              SimOptions{});
  const ColdStartPolicy policy;
  ASSERT_TRUE(platform.DeployFunction(Profile("MST"), policy).ok());
  const InvocationTrace trace = MakeTrace();  // Also invokes DynamicHTML.
  EXPECT_EQ(platform.Replay(trace).status().code(), StatusCode::kNotFound);
}

TEST(PlatformSimulationTest, ReplaysMultiFunctionTrace) {
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  SimOptions options;
  options.seed = 3;
  PlatformSimulation platform(WorkloadRegistry::Default(), eviction, options);
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("MST"), *policy).ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("DynamicHTML"), *policy).ok());

  auto report = platform.Replay(MakeTrace());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  ASSERT_EQ(report->per_function.size(), 2u);
  EXPECT_EQ(report->per_function.at("MST").records.size(), 6u);
  EXPECT_EQ(report->per_function.at("DynamicHTML").records.size(), 6u);
  EXPECT_EQ(report->GlobalLatencySummary().count(), 12u);
  // The 2-minute gap evicted both workers once.
  EXPECT_EQ(report->per_function.at("MST").worker_lifetimes, 2u);
  EXPECT_EQ(report->per_function.at("DynamicHTML").worker_lifetimes, 2u);
  EXPECT_EQ(report->TotalLifetimes(), 4u);
}

TEST(PlatformSimulationTest, FunctionsShareStoresButNotState) {
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  SimOptions options;
  options.seed = 4;
  PlatformSimulation platform(WorkloadRegistry::Default(), eviction, options);
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("MST"), *policy).ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("DynamicHTML"), *policy).ok());

  auto report = platform.Replay(MakeTrace());
  ASSERT_TRUE(report.ok());

  auto mst_state = platform.LoadPolicyState("MST");
  auto html_state = platform.LoadPolicyState("DynamicHTML");
  ASSERT_TRUE(mst_state.ok());
  ASSERT_TRUE(html_state.ok());
  // Each function learned its own latencies (they differ by ~5x scale).
  EXPECT_GT(mst_state->theta.ExploredCount(), 0u);
  EXPECT_GT(html_state->theta.ExploredCount(), 0u);
  EXPECT_GT(mst_state->theta.At(2), html_state->theta.At(2) * 2);
  // Pools are per-function.
  for (const PoolEntry& entry : mst_state->pool.entries()) {
    EXPECT_EQ(entry.metadata.function, "MST");
  }
  EXPECT_EQ(platform.LoadPolicyState("Ghost").status().code(), StatusCode::kNotFound);
}

TEST(PlatformSimulationTest, StatePersistsAcrossReplays) {
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  SimOptions options;
  options.seed = 5;
  PlatformSimulation platform(WorkloadRegistry::Default(), eviction, options);
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("MST"), *policy).ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("DynamicHTML"), *policy).ok());

  ASSERT_TRUE(platform.Replay(MakeTrace()).ok());
  auto first = platform.LoadPolicyState("MST");
  ASSERT_TRUE(first.ok());
  const uint32_t explored_after_first = first->theta.ExploredCount();

  ASSERT_TRUE(platform.Replay(MakeTrace()).ok());
  auto second = platform.LoadPolicyState("MST");
  ASSERT_TRUE(second.ok());
  EXPECT_GE(second->theta.ExploredCount(), explored_after_first);
}

TEST(PlatformSimulationTest, FaultPlanProducesRecoveryStats) {
  // Regression: the platform driver must actually wire its FaultPlan into the
  // shared stores and surface FaultRecoveryStats in the report, like the
  // single-function and fleet drivers do.
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  SimOptions options;
  options.seed = 9;
  options.faults.get_failure_rate = 0.15;
  options.faults.put_failure_rate = 0.15;
  options.faults.seed = 77;
  PlatformSimulation platform(WorkloadRegistry::Default(), eviction, options);
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("MST"), *policy).ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("DynamicHTML"), *policy).ok());

  auto report = platform.RunClosedLoop(400);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->GlobalLatencySummary().count(), 400u);
  // With 15% store failure rates over hundreds of operations, the injected
  // faults must be visible in the platform-level recovery stats.
  EXPECT_GT(report->faults.store_faults + report->faults.db_faults, 0u);

  // A fault-free run of the same platform reports zero injected faults.
  SimOptions clean_options;
  clean_options.seed = 9;
  PlatformSimulation clean(WorkloadRegistry::Default(), eviction, clean_options);
  ASSERT_TRUE(clean.DeployFunction(Profile("MST"), *policy).ok());
  ASSERT_TRUE(clean.DeployFunction(Profile("DynamicHTML"), *policy).ok());
  auto clean_report = clean.RunClosedLoop(400);
  ASSERT_TRUE(clean_report.ok());
  EXPECT_EQ(clean_report->faults.store_faults + clean_report->faults.db_faults, 0u);
}

TEST(PlatformSimulationTest, GeneratedTraceEndToEnd) {
  // Full pipeline: Azure model -> trace -> platform replay.
  const AzureTraceModel model;
  TraceGenerator generator(model, 6);
  auto trace = generator.GenerateTrace(
      {{"MST", 85.0}, {"Thumbnailer", 80.0}}, Duration::Seconds(900));
  ASSERT_TRUE(trace.ok());
  ASSERT_FALSE(trace->empty());

  IdleTimeoutEviction idle(Duration::Seconds(600));
  MaxLifetimeEviction lifetime(Duration::Seconds(1200));
  AnyOfEviction eviction({&idle, &lifetime});
  SimOptions options;
  options.seed = 7;
  PlatformSimulation platform(WorkloadRegistry::Default(), eviction, options);
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("MST"), *policy).ok());
  ASSERT_TRUE(platform.DeployFunction(Profile("Thumbnailer"), *policy).ok());

  auto report = platform.Replay(*trace);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->GlobalLatencySummary().count(), trace->size());
  EXPECT_GT(report->object_store.put_count, 0u);  // Checkpoints were uploaded.
}

}  // namespace
}  // namespace pronghorn
