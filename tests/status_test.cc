#include "src/common/status.h"

#include <gtest/gtest.h>

#include "src/common/result.h"

namespace pronghorn {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = NotFoundError("missing widget");
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing widget");
  EXPECT_EQ(status.ToString(), "NOT_FOUND: missing widget");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(InvalidArgumentError("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(NotFoundError("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(AlreadyExistsError("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(FailedPreconditionError("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(OutOfRangeError("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(DataLossError("x").code(), StatusCode::kDataLoss);
  EXPECT_EQ(ResourceExhaustedError("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(UnimplementedError("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(InternalError("x").code(), StatusCode::kInternal);
  EXPECT_EQ(AbortedError("x").code(), StatusCode::kAborted);
  EXPECT_EQ(UnavailableError("x").code(), StatusCode::kUnavailable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(NotFoundError("a"), NotFoundError("a"));
  EXPECT_FALSE(NotFoundError("a") == NotFoundError("b"));
  EXPECT_FALSE(NotFoundError("a") == InternalError("a"));
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kDataLoss), "DATA_LOSS");
  EXPECT_EQ(StatusCodeName(StatusCode::kAborted), "ABORTED");
}

Status FailsIfNegative(int value) {
  if (value < 0) {
    return InvalidArgumentError("negative");
  }
  return OkStatus();
}

Status UsesReturnIfError(int value) {
  PRONGHORN_RETURN_IF_ERROR(FailsIfNegative(value));
  return OkStatus();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

Result<int> ParsePositive(int value) {
  if (value <= 0) {
    return OutOfRangeError("not positive");
  }
  return value;
}

TEST(ResultTest, HoldsValueOrStatus) {
  Result<int> ok = ParsePositive(7);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 7);
  EXPECT_EQ(ok.value_or(-1), 7);

  Result<int> err = ParsePositive(0);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(err.value_or(-1), -1);
}

Result<int> DoubleIfPositive(int value) {
  PRONGHORN_ASSIGN_OR_RETURN(int parsed, ParsePositive(value));
  return parsed * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  Result<int> ok = DoubleIfPositive(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 42);
  EXPECT_EQ(DoubleIfPositive(-3).status().code(), StatusCode::kOutOfRange);
}

TEST(ResultTest, MoveOnlyValue) {
  auto make = []() -> Result<std::unique_ptr<int>> {
    return std::make_unique<int>(5);
  };
  Result<std::unique_ptr<int>> result = make();
  ASSERT_TRUE(result.ok());
  std::unique_ptr<int> owned = *std::move(result);
  EXPECT_EQ(*owned, 5);
}

}  // namespace
}  // namespace pronghorn
