#include "src/platform/report_io.h"

#include <gtest/gtest.h>

#include <filesystem>

#include "src/core/baseline_policies.h"
#include "src/platform/function_simulation.h"

namespace pronghorn {
namespace {

std::vector<RequestRecord> SampleRecords() {
  std::vector<RequestRecord> records;
  for (uint64_t i = 0; i < 5; ++i) {
    RequestRecord record;
    record.global_index = i;
    record.request_number = i + 1;
    record.latency = Duration::Micros(static_cast<int64_t>(1000 * (i + 1)));
    record.first_of_lifetime = i == 0;
    record.cold_start = i == 0;
    record.checkpoint_after = i == 2;
    records.push_back(record);
  }
  return records;
}

TEST(ReportIoTest, CsvRoundTripInMemory) {
  const auto records = SampleRecords();
  const std::string csv = RecordsToCsv(records);
  auto parsed = RecordsFromCsv(csv);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  ASSERT_EQ(parsed->size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ((*parsed)[i].global_index, records[i].global_index);
    EXPECT_EQ((*parsed)[i].request_number, records[i].request_number);
    EXPECT_EQ((*parsed)[i].latency, records[i].latency);
    EXPECT_EQ((*parsed)[i].first_of_lifetime, records[i].first_of_lifetime);
    EXPECT_EQ((*parsed)[i].cold_start, records[i].cold_start);
    EXPECT_EQ((*parsed)[i].checkpoint_after, records[i].checkpoint_after);
  }
}

TEST(ReportIoTest, CsvHasExpectedHeader) {
  const std::string csv = RecordsToCsv({});
  EXPECT_EQ(csv, "global_index,request_number,latency_us,first_of_lifetime,"
                 "cold_start,checkpoint_after\n");
}

TEST(ReportIoTest, MalformedCsvRejected) {
  EXPECT_FALSE(RecordsFromCsv("nope\n1,2,3,0,0,0\n").ok());
  const std::string header = RecordsToCsv({});
  EXPECT_FALSE(RecordsFromCsv(header + "1,2,3,0,0\n").ok());      // Too few.
  EXPECT_FALSE(RecordsFromCsv(header + "1,2,3,0,0,0,9\n").ok());  // Too many.
  EXPECT_FALSE(RecordsFromCsv(header + "1,x,3,0,0,0\n").ok());    // Bad field.
}

TEST(ReportIoTest, FileRoundTripFromSimulation) {
  const auto profile = WorkloadRegistry::Default().Find("Hash");
  ASSERT_TRUE(profile.ok());
  const ColdStartPolicy policy;
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  FunctionSimulation sim(**profile, WorkloadRegistry::Default(), policy, **eviction,
                         SimOptions{});
  auto report = sim.RunClosedLoop(40);
  ASSERT_TRUE(report.ok());

  const std::string path =
      (std::filesystem::temp_directory_path() / "pronghorn_report_test.csv").string();
  ASSERT_TRUE(WriteRecordsCsv(*report, path).ok());
  auto loaded = ReadRecordsCsv(path);
  ASSERT_TRUE(loaded.ok());
  ASSERT_EQ(loaded->size(), 40u);
  for (size_t i = 0; i < 40; ++i) {
    EXPECT_EQ((*loaded)[i].latency, report->records[i].latency) << i;
  }
  std::filesystem::remove(path);
}

TEST(ReportIoTest, ReadMissingFileIsNotFound) {
  EXPECT_EQ(ReadRecordsCsv("/no/such/records.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(ReportIoTest, SummaryContainsKeyCounters) {
  SimulationReport report;
  report.records = SampleRecords();
  report.worker_lifetimes = 3;
  report.checkpoints = 2;
  const std::string summary = SummarizeReport(report);
  EXPECT_NE(summary.find("requests=5"), std::string::npos);
  EXPECT_NE(summary.find("lifetimes=3"), std::string::npos);
  EXPECT_NE(summary.find("checkpoints=2"), std::string::npos);
  EXPECT_NE(summary.find("p50_us=3000"), std::string::npos);
}

}  // namespace
}  // namespace pronghorn
