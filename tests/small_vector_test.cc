#include "src/common/small_vector.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

TEST(SmallVectorTest, StaysInlineUpToCapacity) {
  SmallVector<int, 4> v;
  EXPECT_TRUE(v.is_inline());
  for (int i = 0; i < 4; ++i) {
    v.push_back(i);
  }
  EXPECT_TRUE(v.is_inline());
  EXPECT_EQ(v.size(), 4u);
  EXPECT_EQ(v.capacity(), 4u);
}

TEST(SmallVectorTest, SpillsToHeapPastCapacityAndKeepsValues) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 20; ++i) {
    v.push_back(i);
  }
  EXPECT_FALSE(v.is_inline());
  EXPECT_EQ(v.size(), 20u);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(v[static_cast<size_t>(i)], i);
  }
}

TEST(SmallVectorTest, ClearKeepsCapacityForReuse) {
  SmallVector<int, 4> v;
  for (int i = 0; i < 20; ++i) {
    v.push_back(i);
  }
  const size_t cap = v.capacity();
  v.clear();
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.capacity(), cap);
}

TEST(SmallVectorTest, ResizeShrinksAndValueInitializes) {
  SmallVector<int, 8> v;
  for (int i = 0; i < 6; ++i) {
    v.push_back(i + 1);
  }
  v.resize(3);
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.back(), 3);
  v.resize(5);
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v[3], 0);
  EXPECT_EQ(v[4], 0);
}

TEST(SmallVectorTest, NonTrivialElementsDestructAndCopy) {
  auto counter = std::make_shared<int>(0);
  {
    SmallVector<std::shared_ptr<int>, 2> v;
    for (int i = 0; i < 10; ++i) {
      v.push_back(counter);
    }
    EXPECT_EQ(counter.use_count(), 11);
    SmallVector<std::shared_ptr<int>, 2> copy(v);
    EXPECT_EQ(counter.use_count(), 21);
  }
  EXPECT_EQ(counter.use_count(), 1);
}

TEST(SmallVectorTest, MoveStealsHeapBuffer) {
  SmallVector<std::string, 2> v;
  for (int i = 0; i < 8; ++i) {
    v.push_back("value-" + std::to_string(i));
  }
  const std::string* heap_data = v.data();
  ASSERT_FALSE(v.is_inline());

  SmallVector<std::string, 2> moved(std::move(v));
  EXPECT_EQ(moved.data(), heap_data);
  EXPECT_EQ(moved.size(), 8u);
  EXPECT_EQ(moved[7], "value-7");
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): specified state.
  EXPECT_TRUE(v.is_inline());
}

TEST(SmallVectorTest, MoveOfInlineElementsMovesEach) {
  SmallVector<std::string, 4> v;
  v.push_back("alpha");
  v.push_back("beta");
  SmallVector<std::string, 4> moved(std::move(v));
  EXPECT_TRUE(moved.is_inline());
  ASSERT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], "alpha");
  EXPECT_EQ(moved[1], "beta");
}

TEST(SmallVectorTest, AssignFromIteratorRange) {
  std::vector<int> src = {5, 6, 7, 8, 9};
  SmallVector<int, 3> v;
  v.assign(src.begin(), src.end());
  EXPECT_EQ(v.size(), 5u);
  EXPECT_EQ(v.front(), 5);
  EXPECT_EQ(v.back(), 9);
}

TEST(SmallVectorTest, EqualityComparesElementwise) {
  SmallVector<int, 4> a = {1, 2, 3};
  SmallVector<int, 4> b = {1, 2, 3};
  SmallVector<int, 4> c = {1, 2, 4};
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

TEST(SmallVectorTest, AlignmentHonoredForOveralignedTypes) {
  struct alignas(32) Wide {
    double lanes[4];
  };
  SmallVector<Wide, 2> v;
  for (int i = 0; i < 6; ++i) {
    v.push_back(Wide{{1.0, 2.0, 3.0, 4.0}});
  }
  EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % alignof(Wide), 0u);
}

}  // namespace
}  // namespace pronghorn
