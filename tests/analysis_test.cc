#include "src/platform/analysis.h"

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

RequestRecord Record(uint64_t index, uint64_t request_number, int64_t latency_us) {
  RequestRecord record;
  record.global_index = index;
  record.request_number = request_number;
  record.latency = Duration::Micros(latency_us);
  return record;
}

std::vector<RequestRecord> DecayingSeries(size_t count, int64_t start_us,
                                          int64_t floor_us, size_t settle_at) {
  std::vector<RequestRecord> records;
  for (size_t i = 0; i < count; ++i) {
    const int64_t latency =
        i >= settle_at
            ? floor_us
            : start_us - static_cast<int64_t>(i) * (start_us - floor_us) /
                             static_cast<int64_t>(settle_at);
    records.push_back(Record(i, i + 1, latency));
  }
  return records;
}

TEST(ConvergenceRequestTest, FindsSettlePoint) {
  const auto records = DecayingSeries(400, 100000, 10000, 200);
  const auto convergence = ConvergenceRequest(records, 20, 0.02);
  ASSERT_TRUE(convergence.has_value());
  // The first window whose median is within 2% of the final median starts
  // near the settle point (a bit before it, as the ramp closes in).
  EXPECT_GE(*convergence, 180u);
  EXPECT_LE(*convergence, 205u);
}

TEST(ConvergenceRequestTest, ImmediateForFlatSeries) {
  std::vector<RequestRecord> records;
  for (size_t i = 0; i < 100; ++i) {
    records.push_back(Record(i, i + 1, 5000));
  }
  const auto convergence = ConvergenceRequest(records, 20, 0.02);
  ASSERT_TRUE(convergence.has_value());
  EXPECT_EQ(*convergence, 0u);
}

TEST(ConvergenceRequestTest, NulloptWhenTooFewRecords) {
  const auto records = DecayingSeries(10, 1000, 100, 5);
  EXPECT_FALSE(ConvergenceRequest(records, 20, 0.02).has_value());
  EXPECT_FALSE(ConvergenceRequest(records, 0, 0.02).has_value());
}

TEST(ConvergenceRequestTest, ToleranceWidensAcceptance) {
  const auto records = DecayingSeries(400, 100000, 10000, 200);
  const auto tight = ConvergenceRequest(records, 20, 0.01);
  const auto loose = ConvergenceRequest(records, 20, 0.50);
  ASSERT_TRUE(tight.has_value());
  ASSERT_TRUE(loose.has_value());
  EXPECT_LT(*loose, *tight);
}

TEST(LatencyByMaturityTest, AggregatesAcrossLifetimes) {
  std::vector<RequestRecord> records;
  // Two lifetimes of 3 requests: maturities 1,2,3 each seen twice.
  records.push_back(Record(0, 1, 100));
  records.push_back(Record(1, 2, 80));
  records.push_back(Record(2, 3, 60));
  records.push_back(Record(3, 1, 120));
  records.push_back(Record(4, 2, 90));
  records.push_back(Record(5, 3, 70));

  const auto rows = LatencyByMaturity(records);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0].request_number, 1u);
  EXPECT_EQ(rows[0].samples, 2u);
  EXPECT_DOUBLE_EQ(rows[0].median_latency_us, 110.0);
  EXPECT_DOUBLE_EQ(rows[1].median_latency_us, 85.0);
  EXPECT_DOUBLE_EQ(rows[2].median_latency_us, 65.0);
}

TEST(LatencyByMaturityTest, EmptyInput) {
  EXPECT_TRUE(LatencyByMaturity({}).empty());
}

TEST(MedianImprovementPercentTest, PositiveWhenOursFaster) {
  SimulationReport baseline;
  SimulationReport ours;
  for (int i = 0; i < 10; ++i) {
    baseline.records.push_back(Record(static_cast<uint64_t>(i), 1, 1000));
    ours.records.push_back(Record(static_cast<uint64_t>(i), 1, 600));
  }
  EXPECT_NEAR(MedianImprovementPercent(baseline, ours), 40.0, 1e-9);
  EXPECT_NEAR(MedianImprovementPercent(ours, baseline), -66.67, 0.01);
}

TEST(MedianImprovementPercentTest, ZeroBaselineYieldsZero) {
  SimulationReport baseline;
  SimulationReport ours;
  ours.records.push_back(Record(0, 1, 500));
  EXPECT_DOUBLE_EQ(MedianImprovementPercent(baseline, ours), 0.0);
}

TEST(SimulationReportTest, MaturityFilteredSummary) {
  SimulationReport report;
  report.records.push_back(Record(0, 1, 1000));
  report.records.push_back(Record(1, 2, 2000));
  report.records.push_back(Record(2, 50, 100));
  report.records.push_back(Record(3, 51, 200));
  const auto early = report.LatencySummaryForMaturity(1, 2);
  const auto late = report.LatencySummaryForMaturity(50, 100);
  EXPECT_EQ(early.count(), 2u);
  EXPECT_EQ(late.count(), 2u);
  EXPECT_DOUBLE_EQ(early.Median(), 1500.0);
  EXPECT_DOUBLE_EQ(late.Median(), 150.0);
  EXPECT_DOUBLE_EQ(report.MedianLatencyUs(), 600.0);
}

}  // namespace
}  // namespace pronghorn
