#include "src/core/weight_vector.h"

#include <gtest/gtest.h>

#include "src/common/bytes.h"

namespace pronghorn {
namespace {

constexpr double kMu = 1e-6;

TEST(WeightVectorTest, StartsUnexplored) {
  WeightVector theta(50);
  EXPECT_EQ(theta.length(), 50u);
  EXPECT_EQ(theta.ExploredCount(), 0u);
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_DOUBLE_EQ(theta.At(i), 0.0);
    EXPECT_FALSE(theta.IsExplored(i));
  }
}

TEST(WeightVectorTest, FirstObservationInitializes) {
  WeightVector theta(10);
  theta.Update(3, 0.25, /*alpha=*/0.3);
  // Algorithm 1, line 26: the first sample is stored verbatim, not blended
  // with the zero initialization.
  EXPECT_DOUBLE_EQ(theta.At(3), 0.25);
  EXPECT_TRUE(theta.IsExplored(3));
  EXPECT_EQ(theta.ExploredCount(), 1u);
}

TEST(WeightVectorTest, SubsequentObservationsUseEwma) {
  WeightVector theta(10);
  theta.Update(3, 1.0, 0.3);
  theta.Update(3, 2.0, 0.3);
  EXPECT_DOUBLE_EQ(theta.At(3), 0.3 * 2.0 + 0.7 * 1.0);
}

TEST(WeightVectorTest, OutOfRangeUpdateIgnored) {
  WeightVector theta(10);
  theta.Update(10, 1.0, 0.3);
  theta.Update(10000, 1.0, 0.3);
  EXPECT_EQ(theta.ExploredCount(), 0u);
}

TEST(WeightVectorTest, NonPositiveLatencyIgnored) {
  WeightVector theta(10);
  theta.Update(3, 0.0, 0.3);
  theta.Update(3, -1.0, 0.3);
  EXPECT_FALSE(theta.IsExplored(3));
}

TEST(WeightVectorTest, InverseWeightsFavorLowLatency) {
  WeightVector theta(10);
  theta.Update(1, 0.100, 0.3);  // 100 ms.
  theta.Update(2, 0.010, 0.3);  // 10 ms.
  const auto weights = theta.InverseWeights(1, 2, kMu);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[1], weights[0] * 9.0);
}

TEST(WeightVectorTest, UnexploredGetsEnormousWeight) {
  WeightVector theta(10);
  theta.Update(1, 0.010, 0.3);
  const auto weights = theta.InverseWeights(1, 2, kMu);
  // theta[2] is unexplored -> weight 1/mu = 1e6 vs 100 for the explored one.
  EXPECT_GT(weights[1], weights[0] * 1000.0);
}

TEST(WeightVectorTest, InverseWeightsClampToRange) {
  WeightVector theta(5);
  EXPECT_EQ(theta.InverseWeights(3, 100, kMu).size(), 2u);  // Indices 3, 4.
  EXPECT_TRUE(theta.InverseWeights(7, 9, kMu).empty());
  EXPECT_TRUE(theta.InverseWeights(4, 2, kMu).empty());
}

TEST(WeightVectorTest, LifetimeWeightAveragesInverse) {
  WeightVector theta(20);
  for (uint64_t i = 0; i <= 10; ++i) {
    theta.Update(i, 0.1, 0.3);  // Uniform 100ms.
  }
  const double weight = theta.LifetimeWeight(0, 10, kMu);
  // (1/beta) * sum of 11 entries of ~10 -> ~11.
  EXPECT_NEAR(weight, 11.0 * (1.0 / (0.1 + kMu)) / 10.0, 1e-6);
}

TEST(WeightVectorTest, LifetimeWeightPrefersFasterRegions) {
  WeightVector theta(40);
  for (uint64_t i = 0; i <= 30; ++i) {
    theta.Update(i, i < 15 ? 0.2 : 0.02, 0.3);
  }
  EXPECT_GT(theta.LifetimeWeight(16, 10, kMu), theta.LifetimeWeight(0, 10, kMu) * 5);
}

TEST(WeightVectorTest, LifetimeWeightBeyondEndTreatsAsUnexplored) {
  WeightVector theta(10);
  for (uint64_t i = 0; i < 10; ++i) {
    theta.Update(i, 0.1, 0.3);
  }
  // Window [8, 8+5] runs past the end; the out-of-range part counts as
  // unexplored and boosts the weight.
  EXPECT_GT(theta.LifetimeWeight(8, 5, kMu), theta.LifetimeWeight(0, 5, kMu) * 10);
}

TEST(WeightVectorTest, LifetimeLatencySum) {
  WeightVector theta(10);
  theta.Update(2, 0.5, 0.3);
  theta.Update(3, 0.25, 0.3);
  EXPECT_DOUBLE_EQ(theta.LifetimeLatencySum(2, 1), 0.75);
  EXPECT_DOUBLE_EQ(theta.LifetimeLatencySum(5, 3), 0.0);
}

TEST(WeightVectorTest, SerializationRoundTrip) {
  WeightVector theta(30);
  theta.Update(0, 0.1, 0.3);
  theta.Update(7, 0.05, 0.3);
  theta.Update(29, 1.5, 0.3);

  ByteWriter writer;
  theta.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = WeightVector::Deserialize(reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, theta);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(WeightVectorTest, DeserializeRejectsNegativeLatency) {
  ByteWriter writer;
  writer.WriteVarint(2);
  writer.WriteDouble(0.5);
  writer.WriteDouble(-0.5);
  ByteReader reader(writer.data());
  EXPECT_EQ(WeightVector::Deserialize(reader).status().code(), StatusCode::kDataLoss);
}

TEST(WeightVectorTest, DeserializeRejectsImplausibleLength) {
  ByteWriter writer;
  writer.WriteVarint(1ULL << 40);
  ByteReader reader(writer.data());
  EXPECT_EQ(WeightVector::Deserialize(reader).status().code(), StatusCode::kDataLoss);
}

// Property: repeated EWMA updates converge to a steady signal for any alpha.
class EwmaConvergenceSweep : public ::testing::TestWithParam<double> {};

TEST_P(EwmaConvergenceSweep, ConvergesToSteadySignal) {
  const double alpha = GetParam();
  WeightVector theta(4);
  theta.Update(1, 10.0, alpha);
  for (int i = 0; i < 500; ++i) {
    theta.Update(1, 0.5, alpha);
  }
  EXPECT_NEAR(theta.At(1), 0.5, 1e-3);
}

INSTANTIATE_TEST_SUITE_P(Alphas, EwmaConvergenceSweep,
                         ::testing::Values(0.05, 0.1, 0.3, 0.5, 0.9, 1.0));

}  // namespace
}  // namespace pronghorn
