#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

// Restores the global level after each test.
class LoggingTest : public ::testing::Test {
 protected:
  void SetUp() override { saved_level_ = GetLogLevel(); }
  void TearDown() override { SetLogLevel(saved_level_); }

  LogLevel saved_level_;
};

TEST_F(LoggingTest, LevelRoundTrips) {
  for (LogLevel level : {LogLevel::kDebug, LogLevel::kInfo, LogLevel::kWarning,
                         LogLevel::kError, LogLevel::kOff}) {
    SetLogLevel(level);
    EXPECT_EQ(GetLogLevel(), level);
  }
}

TEST_F(LoggingTest, SuppressedLevelsDoNotCrash) {
  SetLogLevel(LogLevel::kOff);
  // Nothing should be emitted (and nothing should blow up) at any level.
  PRONGHORN_LOG_DEBUG("debug %d", 1);
  PRONGHORN_LOG_INFO("info %s", "x");
  PRONGHORN_LOG_WARNING("warning %f", 2.5);
  PRONGHORN_LOG_ERROR("error");
}

TEST_F(LoggingTest, EnabledLevelsFormatSafely) {
  SetLogLevel(LogLevel::kDebug);
  ::testing::internal::CaptureStderr();
  PRONGHORN_LOG_INFO("value=%d name=%s", 42, "widget");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(out.find("value=42 name=widget"), std::string::npos);
  EXPECT_NE(out.find("[I"), std::string::npos);
  EXPECT_NE(out.find("logging_test.cc"), std::string::npos);
}

TEST_F(LoggingTest, LongMessagesAreTruncatedNotOverflowed) {
  SetLogLevel(LogLevel::kError);
  std::string huge(5000, 'x');
  ::testing::internal::CaptureStderr();
  PRONGHORN_LOG_ERROR("%s", huge.c_str());
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_FALSE(out.empty());
  EXPECT_LT(out.size(), 1200u);  // vsnprintf truncation at the 1 KiB buffer.
}

TEST_F(LoggingTest, LevelFiltering) {
  SetLogLevel(LogLevel::kWarning);
  ::testing::internal::CaptureStderr();
  PRONGHORN_LOG_DEBUG("should not appear");
  PRONGHORN_LOG_INFO("should not appear either");
  PRONGHORN_LOG_WARNING("warning shows");
  const std::string out = ::testing::internal::GetCapturedStderr();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("warning shows"), std::string::npos);
}

}  // namespace
}  // namespace pronghorn
