// The dedup snapshot store battery: legacy-accounting parity with the flat
// adapter, chunk refcount/GC invariants, lazy-vs-eager byte identity,
// pin/zombie semantics, chunk-granular chaos (copy-on-write corruption,
// manifest CRC), orchestrator-level recovery under chunk faults, and fleet
// digest bit-identity with the store swapped flat <-> dedup under chaos at
// several thread counts.

#include "src/store/snapshot_store.h"

#include <cstdint>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/simulate.h"
#include "src/store/fault_injection.h"
#include "src/store/object_store.h"

namespace pronghorn {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(n);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.NextUint64());
  }
  return bytes;
}

ObjectBlob Blob(std::vector<uint8_t> payload) {
  const uint64_t logical = payload.size();
  return ObjectBlob(std::move(payload), logical);
}

SnapshotStoreOptions DedupOptions() {
  SnapshotStoreOptions options;
  options.kind = SnapshotStoreOptions::Kind::kDedup;
  options.chunker.chunk_size = 1024;
  return options;
}

Result<ObjectBlob> ReadBack(SnapshotStore& store, std::string_view key) {
  PRONGHORN_ASSIGN_OR_RETURN(std::unique_ptr<SnapshotReader> reader,
                             store.OpenSnapshot(key));
  return reader->ReadAll();
}

// --- Legacy accounting parity ------------------------------------------

// The seven digest-covered accounting fields must be identical whichever
// implementation backs the store, for the same operation sequence.
TEST(SnapshotStoreTest, LegacyAccountingMatchesFlatAdapterExactly) {
  InMemoryObjectStore object_store;
  FlatSnapshotStore flat(object_store);
  DedupSnapshotStore dedup(DedupOptions());

  for (SnapshotStore* store : {static_cast<SnapshotStore*>(&flat),
                               static_cast<SnapshotStore*>(&dedup)}) {
    ASSERT_TRUE(store->PutSnapshot("fn/a", Blob(RandomBytes(5000, 1))).ok());
    ASSERT_TRUE(store->PutSnapshot("fn/b", Blob(RandomBytes(3000, 2))).ok());
    // Replace a; the store subtracts the old logical size first.
    ASSERT_TRUE(store->PutSnapshot("fn/a", Blob(RandomBytes(7000, 3))).ok());
    ASSERT_TRUE(ReadBack(*store, "fn/a").ok());
    ASSERT_TRUE(ReadBack(*store, "fn/b").ok());
    ASSERT_TRUE(store->DeleteSnapshot("fn/b").ok());
    // Error paths must not perturb the books.
    EXPECT_EQ(store->PutSnapshot("", Blob(RandomBytes(10, 4))).status().code(),
              StatusCode::kInvalidArgument);
    EXPECT_EQ(ReadBack(*store, "missing").status().code(), StatusCode::kNotFound);
    EXPECT_EQ(store->DeleteSnapshot("missing").code(), StatusCode::kNotFound);
  }

  const StoreAccounting f = flat.accounting();
  const StoreAccounting d = dedup.accounting();
  EXPECT_EQ(f.logical_bytes_stored, d.logical_bytes_stored);
  EXPECT_EQ(f.peak_logical_bytes, d.peak_logical_bytes);
  EXPECT_EQ(f.network_bytes_uploaded, d.network_bytes_uploaded);
  EXPECT_EQ(f.network_bytes_downloaded, d.network_bytes_downloaded);
  EXPECT_EQ(f.put_count, d.put_count);
  EXPECT_EQ(f.get_count, d.get_count);
  EXPECT_EQ(f.delete_count, d.delete_count);

  EXPECT_EQ(flat.ListSnapshots(""), dedup.ListSnapshots(""));
  EXPECT_EQ(flat.ContainsSnapshot("fn/a"), dedup.ContainsSnapshot("fn/a"));
  EXPECT_EQ(flat.ContainsSnapshot("fn/b"), dedup.ContainsSnapshot("fn/b"));
}

// --- Dedup + physical accounting identities ----------------------------

TEST(SnapshotStoreTest, SharedContentDedupsAndIdentitiesHold) {
  DedupSnapshotStore store(DedupOptions());
  // Two snapshots sharing their first 8 KiB exactly (chunk-aligned).
  auto shared = RandomBytes(8192, 1);
  auto a = shared;
  auto a_tail = RandomBytes(4096, 2);
  a.insert(a.end(), a_tail.begin(), a_tail.end());
  auto b = shared;
  auto b_tail = RandomBytes(4096, 3);
  b.insert(b.end(), b_tail.begin(), b_tail.end());

  auto ref_a = store.PutSnapshot("fn/a", Blob(a));
  auto ref_b = store.PutSnapshot("fn/b", Blob(b));
  ASSERT_TRUE(ref_a.ok());
  ASSERT_TRUE(ref_b.ok());
  EXPECT_EQ(ref_a->chunk_count, 12u);
  EXPECT_EQ(ref_a->unique_bytes_added, 12288u);
  // b added only its unique tail: the 8 shared chunks were dedup hits.
  EXPECT_EQ(ref_b->unique_bytes_added, 4096u);

  const PhysicalAccounting phys = store.accounting().physical;
  EXPECT_EQ(phys.chunks_stored, 16u);  // 12 unique of a + 4 of b.
  EXPECT_EQ(phys.chunk_refs, 24u);     // 12 + 12 manifest references.
  EXPECT_EQ(phys.dedup_hits, 8u);
  EXPECT_EQ(phys.dedup_bytes_saved, 8192u);
  // Flat view counts both snapshots in full.
  EXPECT_EQ(phys.flat_bytes_stored, 24576u);
  // Physical = unique chunk bytes + the two serialized manifests.
  EXPECT_GE(phys.bytes_stored, 16384u);
  EXPECT_LT(phys.bytes_stored, 16384u + 2048u);
  // Identity: flat == unique chunk bytes + dedup savings.
  EXPECT_EQ(phys.flat_bytes_stored, 16384u + phys.dedup_bytes_saved);
  EXPECT_TRUE(store.CheckInvariants().ok()) << store.CheckInvariants().ToString();

  // Both snapshots read back byte-identical.
  auto read_a = ReadBack(store, "fn/a");
  auto read_b = ReadBack(store, "fn/b");
  ASSERT_TRUE(read_a.ok());
  ASSERT_TRUE(read_b.ok());
  EXPECT_EQ(read_a->bytes(), a);
  EXPECT_EQ(read_b->bytes(), b);
}

TEST(SnapshotStoreTest, AdjacentSnapshotsOfOnePrefixCountDeltaSharing) {
  DedupSnapshotStore store(DedupOptions());
  auto v1 = RandomBytes(16384, 1);
  auto v2 = v1;
  // Dirty one aligned chunk; everything else is shared with v1. Adjacent
  // pool snapshots live at distinct keys under one "<function>/" prefix.
  for (size_t i = 4096; i < 5120; ++i) {
    v2[i] ^= 0xff;
  }
  ASSERT_TRUE(store.PutSnapshot("fn/v1", Blob(v1)).ok());
  ASSERT_TRUE(store.PutSnapshot("fn/v2", Blob(v2)).ok());
  const PhysicalAccounting phys = store.accounting().physical;
  EXPECT_EQ(phys.delta_bytes_shared, 15360u);  // 15 of 16 chunks shared.
  EXPECT_TRUE(store.CheckInvariants().ok());
}

// --- Refcounts, GC, and churn ------------------------------------------

TEST(SnapshotStoreTest, GcCollectsExactlyUnreferencedChunks) {
  DedupSnapshotStore store(DedupOptions());
  auto shared = RandomBytes(4096, 1);
  auto a = shared;
  auto a_tail = RandomBytes(2048, 2);
  a.insert(a.end(), a_tail.begin(), a_tail.end());
  ASSERT_TRUE(store.PutSnapshot("fn/a", Blob(a)).ok());
  ASSERT_TRUE(store.PutSnapshot("fn/b", Blob(shared)).ok());
  EXPECT_EQ(store.resident_chunks(), 6u);  // 4 shared + 2 unique to a.

  ASSERT_TRUE(store.DeleteSnapshot("fn/a").ok());
  // Deletion defers reclaim: a's unique chunks are garbage but resident.
  EXPECT_EQ(store.resident_chunks(), 6u);
  EXPECT_EQ(store.unreferenced_chunks(), 2u);
  EXPECT_TRUE(store.CheckInvariants().ok());

  EXPECT_EQ(store.CollectGarbage(), 2u);
  EXPECT_EQ(store.resident_chunks(), 4u);
  EXPECT_EQ(store.unreferenced_chunks(), 0u);
  EXPECT_TRUE(store.CheckInvariants().ok());

  // The surviving snapshot is untouched.
  auto read_b = ReadBack(store, "fn/b");
  ASSERT_TRUE(read_b.ok());
  EXPECT_EQ(read_b->bytes(), shared);
  const PhysicalAccounting phys = store.accounting().physical;
  EXPECT_EQ(phys.chunks_collected, 2u);
  EXPECT_EQ(phys.bytes_collected, 2048u);
}

TEST(SnapshotStoreTest, InvariantsHoldUnderRandomChurn) {
  SnapshotStoreOptions options = DedupOptions();
  options.chunker.cdc = true;
  options.chunker.chunk_size = 512;
  options.chunker.min_size = 128;
  options.chunker.max_size = 2048;
  DedupSnapshotStore store(options);
  Rng rng(42);
  std::vector<std::string> keys;
  for (int op = 0; op < 400; ++op) {
    const uint64_t draw = rng.UniformUint64(10);
    if (draw < 5 || keys.empty()) {
      const std::string key =
          "fn" + std::to_string(rng.UniformUint64(4)) + "/w" +
          std::to_string(rng.UniformUint64(3));
      ASSERT_TRUE(store
                      .PutSnapshot(key,
                                   Blob(RandomBytes(1 + rng.UniformUint64(20000),
                                                    static_cast<uint64_t>(op))))
                      .ok());
      keys.push_back(key);
    } else if (draw < 7) {
      const std::string& key = keys[rng.UniformUint64(keys.size())];
      if (store.ContainsSnapshot(key)) {
        ASSERT_TRUE(store.DeleteSnapshot(key).ok());
      }
    } else if (draw < 9) {
      const std::string& key = keys[rng.UniformUint64(keys.size())];
      if (store.ContainsSnapshot(key)) {
        ASSERT_TRUE(ReadBack(store, key).ok());
      }
    } else {
      store.CollectGarbage();
    }
    ASSERT_TRUE(store.CheckInvariants().ok())
        << "op " << op << ": " << store.CheckInvariants().ToString();
  }
  store.CollectGarbage();
  EXPECT_EQ(store.unreferenced_chunks(), 0u);
  EXPECT_TRUE(store.CheckInvariants().ok());
}

// --- Lazy restore -------------------------------------------------------

TEST(SnapshotStoreTest, LazyAndEagerRestoresAreByteIdentical) {
  const auto payload = RandomBytes(50000, 7);
  SnapshotStoreOptions eager_options = DedupOptions();
  SnapshotStoreOptions lazy_options = DedupOptions();
  lazy_options.lazy_restore = true;
  DedupSnapshotStore eager(eager_options);
  DedupSnapshotStore lazy(lazy_options);
  ASSERT_TRUE(eager.PutSnapshot("fn/a", Blob(payload)).ok());
  ASSERT_TRUE(lazy.PutSnapshot("fn/a", Blob(payload)).ok());

  // First restore records the working set; later restores prefetch it.
  // Every materialization must equal the original bytes.
  for (int i = 0; i < 3; ++i) {
    auto from_eager = ReadBack(eager, "fn/a");
    auto from_lazy = ReadBack(lazy, "fn/a");
    ASSERT_TRUE(from_eager.ok());
    ASSERT_TRUE(from_lazy.ok());
    EXPECT_EQ(from_eager->bytes(), payload);
    EXPECT_EQ(from_lazy->bytes(), payload);
    EXPECT_EQ(from_lazy->logical_size, payload.size());
  }

  // Eager refetches everything every time; lazy paid once and then hit the
  // host cache.
  const PhysicalAccounting ep = eager.accounting().physical;
  const PhysicalAccounting lp = lazy.accounting().physical;
  EXPECT_EQ(ep.bytes_fetched, 3u * 50000u);
  EXPECT_EQ(lp.bytes_fetched, 50000u);
  EXPECT_GT(lp.cache_hits, 0u);
  EXPECT_TRUE(lazy.CheckInvariants().ok());
}

// --- Pins, readers, zombies --------------------------------------------

TEST(SnapshotStoreTest, OpenReaderKeepsDeletedSnapshotReadable) {
  DedupSnapshotStore store(DedupOptions());
  const auto payload = RandomBytes(10000, 1);
  ASSERT_TRUE(store.PutSnapshot("fn/a", Blob(payload)).ok());

  auto reader = store.OpenSnapshot("fn/a");
  ASSERT_TRUE(reader.ok());
  ASSERT_TRUE(store.DeleteSnapshot("fn/a").ok());
  EXPECT_FALSE(store.ContainsSnapshot("fn/a"));

  // The pinned manifest holds its chunks against GC.
  store.CollectGarbage();
  auto blob = (*reader)->ReadAll();
  ASSERT_TRUE(blob.ok());
  EXPECT_EQ(blob->bytes(), payload);
  EXPECT_TRUE(store.CheckInvariants().ok());

  // Dropping the reader releases the zombie; GC can now reclaim.
  reader->reset();
  store.CollectGarbage();
  EXPECT_EQ(store.resident_chunks(), 0u);
  EXPECT_TRUE(store.CheckInvariants().ok());
}

TEST(SnapshotStoreTest, ExplicitPinsNestAndGateRelease) {
  DedupSnapshotStore store(DedupOptions());
  ASSERT_TRUE(store.PutSnapshot("fn/a", Blob(RandomBytes(5000, 1))).ok());

  // Pins nest on a live snapshot, and the count is balance-checked.
  EXPECT_EQ(store.Unpin("fn/a").code(), StatusCode::kFailedPrecondition);
  ASSERT_TRUE(store.Pin("fn/a").ok());
  ASSERT_TRUE(store.Pin("fn/a").ok());
  ASSERT_TRUE(store.Unpin("fn/a").ok());
  ASSERT_TRUE(store.Unpin("fn/a").ok());
  EXPECT_EQ(store.Unpin("fn/a").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(store.Pin("missing").code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Unpin("missing").code(), StatusCode::kNotFound);

  // A pin held at deletion time turns the snapshot into a zombie that GC
  // must not reclaim. (Key-addressed Pin/Unpin only sees live snapshots;
  // zombie pins drain through reader handles.)
  ASSERT_TRUE(store.Pin("fn/a").ok());
  ASSERT_TRUE(store.DeleteSnapshot("fn/a").ok());
  EXPECT_EQ(store.Unpin("fn/a").code(), StatusCode::kNotFound);
  store.CollectGarbage();
  EXPECT_GT(store.resident_chunks(), 0u);
  EXPECT_TRUE(store.CheckInvariants().ok());
}

// --- Chunk-granular chaos ----------------------------------------------

TEST(SnapshotStoreTest, ChunkCorruptionIsCopyOnWrite) {
  DedupSnapshotStore store(DedupOptions());
  const auto payload = RandomBytes(8192, 1);
  // Two keys sharing every chunk.
  ASSERT_TRUE(store.PutSnapshot("fn/a", Blob(payload)).ok());
  ASSERT_TRUE(store.PutSnapshot("fn/b", Blob(payload)).ok());

  Rng rng(99);
  ASSERT_TRUE(store.CorruptChunk("fn/a", rng).ok());

  auto read_a = ReadBack(store, "fn/a");
  auto read_b = ReadBack(store, "fn/b");
  ASSERT_TRUE(read_a.ok());
  ASSERT_TRUE(read_b.ok());
  // The victim sees exactly one flipped bit; the sibling sharing the
  // original chunk is untouched.
  EXPECT_NE(read_a->bytes(), payload);
  EXPECT_EQ(read_b->bytes(), payload);
  size_t diff_bits = 0;
  for (size_t i = 0; i < payload.size(); ++i) {
    diff_bits += static_cast<size_t>(
        __builtin_popcount(read_a->bytes()[i] ^ payload[i]));
  }
  EXPECT_EQ(diff_bits, 1u);
  EXPECT_TRUE(store.CheckInvariants().ok()) << store.CheckInvariants().ToString();
}

TEST(SnapshotStoreTest, ManifestCorruptionFailsOpenWithDataLoss) {
  DedupSnapshotStore store(DedupOptions());
  ASSERT_TRUE(store.PutSnapshot("fn/a", Blob(RandomBytes(4096, 1))).ok());
  Rng rng(7);
  ASSERT_TRUE(store.CorruptManifest("fn/a", rng).ok());
  EXPECT_EQ(store.OpenSnapshot("fn/a").status().code(), StatusCode::kDataLoss);
  // The store itself stays sound; the snapshot can be deleted and GC'd.
  ASSERT_TRUE(store.DeleteSnapshot("fn/a").ok());
  store.CollectGarbage();
  EXPECT_TRUE(store.CheckInvariants().ok());
}

TEST(SnapshotStoreTest, FaultDecoratorInjectsChunkAndManifestFaults) {
  DedupSnapshotStore inner(DedupOptions());
  FaultPlan plan;
  plan.chunk_corruption_rate = 1.0;
  FaultySnapshotStore faulty(inner, plan);
  ASSERT_TRUE(faulty.PutSnapshot("fn/a", Blob(RandomBytes(4096, 1))).ok());
  EXPECT_EQ(faulty.stats().corrupted_chunks, 1u);
  EXPECT_EQ(faulty.stats().corrupted_manifests, 0u);

  FaultPlan manifest_plan;
  manifest_plan.manifest_corruption_rate = 1.0;
  DedupSnapshotStore inner2(DedupOptions());
  FaultySnapshotStore faulty2(inner2, manifest_plan);
  ASSERT_TRUE(faulty2.PutSnapshot("fn/a", Blob(RandomBytes(4096, 1))).ok());
  EXPECT_EQ(faulty2.stats().corrupted_manifests, 1u);
  EXPECT_EQ(faulty2.OpenSnapshot("fn/a").status().code(), StatusCode::kDataLoss);
  EXPECT_TRUE(inner2.CheckInvariants().ok());
}

// --- Orchestrator recovery under chunk faults ---------------------------

PolicyConfig RecoveryConfig() {
  PolicyConfig config;
  config.beta = 1;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  return config;
}

// Chunk and manifest corruption must surface as ranked-fallback restores
// and quarantines in a full simulated run — not as hard failures.
TEST(SnapshotStoreTest, OrchestratorRecoversFromChunkFaults) {
  const auto profile = WorkloadRegistry::Default().Find("DynamicHTML");
  ASSERT_TRUE(profile.ok());
  const auto policy = RequestCentricPolicy::Create(RecoveryConfig());
  ASSERT_TRUE(policy.ok());

  SimOptions options;
  options.seed = 11;
  options.worker_slots = 1;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = 1;
  options.store.kind = SnapshotStoreOptions::Kind::kDedup;
  options.faults.chunk_corruption_rate = 0.25;
  options.faults.manifest_corruption_rate = 0.05;

  SimFunctionSpec spec;
  spec.name = (*profile)->name;
  spec.profile = *profile;
  spec.policy = &*policy;
  spec.requests = 500;
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Every request was served despite the at-rest corruption...
  EXPECT_EQ(report->flat().records.size(), 500u);
  // ...because the recovery machinery absorbed it.
  EXPECT_GT(report->faults.restore_failures, 0u);
  EXPECT_GT(report->faults.restore_fallbacks + report->faults.snapshots_quarantined,
            0u);
}

// --- Digest bit-identity across store builds ----------------------------

// The tentpole contract: a fleet run under chaos produces the same digest
// whichever store build backs it, at any thread count.
TEST(SnapshotStoreTest, FleetDigestsBitIdenticalFlatVsDedupUnderChaos) {
  const auto profile = WorkloadRegistry::Default().Find("DynamicHTML");
  ASSERT_TRUE(profile.ok());
  const auto policy = RequestCentricPolicy::Create(RecoveryConfig());
  ASSERT_TRUE(policy.ok());

  std::vector<SimFunctionSpec> specs;
  for (int f = 0; f < 4; ++f) {
    SimFunctionSpec spec;
    spec.name = "fn" + std::to_string(f);
    spec.profile = *profile;
    spec.policy = &*policy;
    spec.requests = 80;
    specs.push_back(std::move(spec));
  }

  const auto run = [&](uint32_t threads, SnapshotStoreOptions store) {
    SimOptions options;
    options.seed = 21;
    options.threads = threads;
    options.worker_slots = 2;
    options.exploring_slots = 1;
    options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
    options.eviction.k = 4;
    options.store = store;
    options.faults.get_failure_rate = 0.08;
    options.faults.put_failure_rate = 0.08;
    options.faults.delete_failure_rate = 0.08;
    options.faults.metadata_failure_rate = 0.08;
    options.faults.corruption_rate = 0.02;
    options.faults.torn_write_rate = 0.02;
    auto report =
        Simulate(WorkloadRegistry::Default(), SimTopology::kFleet, specs, options);
    EXPECT_TRUE(report.ok()) << report.status().ToString();
    return report.ok() ? report->Digest() : 0u;
  };

  SnapshotStoreOptions flat;
  SnapshotStoreOptions dedup = DedupOptions();
  SnapshotStoreOptions dedup_lazy_cdc = DedupOptions();
  dedup_lazy_cdc.chunker.cdc = true;
  dedup_lazy_cdc.lazy_restore = true;

  const uint32_t golden = run(1, flat);
  ASSERT_NE(golden, 0u);
  for (const uint32_t threads : {1u, 2u, 8u}) {
    EXPECT_EQ(run(threads, flat), golden) << "flat, threads=" << threads;
    EXPECT_EQ(run(threads, dedup), golden) << "dedup, threads=" << threads;
    EXPECT_EQ(run(threads, dedup_lazy_cdc), golden)
        << "dedup+cdc+lazy, threads=" << threads;
  }
}

}  // namespace
}  // namespace pronghorn
