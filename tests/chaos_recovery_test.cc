// End-to-end recovery behavior of the orchestrator under injected failures:
// ranked fallback restores, quarantine of persistently corrupt snapshots,
// stale-entry pruning, degraded starts across Database outages with buffered
// observation replay, orphan GC, and policy convergence under a 10% fault
// rate. Complements fault_injection_test (decorator semantics) and
// orchestrator_test (healthy paths).

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/checkpoint/criu_like_engine.h"
#include "src/core/orchestrator.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/analysis.h"
#include "src/platform/eviction.h"
#include "src/platform/function_simulation.h"
#include "src/store/fault_injection.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 3;
  config.max_checkpoint_request = 30;
  return config;
}

// Per-function stack with direct access to the raw stores, so tests can
// damage specific blobs between lifetimes.
struct ChaosHarness {
  explicit ChaosHarness(const OrchestrationPolicy& policy_in,
                        RecoveryOptions recovery = RecoveryOptions{})
      : profile(**WorkloadRegistry::Default().Find("DynamicHTML")),
        policy(policy_in),
        engine(1),
        state_store(db, profile.name, policy.config()),
        snapshot_store(object_store),
        orchestrator(profile, WorkloadRegistry::Default(), policy, engine,
                     snapshot_store, state_store, clock, /*seed=*/7,
                     OrchestratorCostModel{}, recovery) {}

  const WorkloadProfile& profile;
  const OrchestrationPolicy& policy;
  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  CriuLikeEngine engine;
  PolicyStateStore state_store;
  FlatSnapshotStore snapshot_store;
  Orchestrator orchestrator;

  // Runs `count` full lifetimes of 4 requests each; with beta = 4 every
  // lifetime's checkpoint plan fires, growing the pool by one snapshot.
  void RunLifetimes(int count) {
    for (int lifetime = 0; lifetime < count; ++lifetime) {
      auto session = orchestrator.StartWorker();
      ASSERT_TRUE(session.ok()) << session.status().ToString();
      for (uint64_t i = 1; i <= 4; ++i) {
        auto outcome = orchestrator.ServeRequest(*session, {i, 1.0});
        ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
      }
    }
  }

  std::vector<PoolEntry> PoolEntries() {
    auto state = state_store.Load();
    EXPECT_TRUE(state.ok());
    const auto entries = state->pool.entries();
    return std::vector<PoolEntry>(entries.begin(), entries.end());
  }

  // Flips a byte in the middle of the stored image so the CRC check rejects
  // it at restore time.
  void CorruptBlob(const std::string& key) {
    auto blob = object_store.Get(key);
    ASSERT_TRUE(blob.ok());
    std::vector<uint8_t> bytes = blob->bytes();  // Private copy: the stored
    bytes[bytes.size() / 2] ^= 0xff;             // buffer is immutable.
    ASSERT_TRUE(
        object_store.Put(key, ObjectBlob(std::move(bytes), blob->logical_size)).ok());
  }
};

// The acceptance scenario: whichever single snapshot survives, the restore
// walks the policy's ranked candidates until it reaches the intact image —
// the worker never cold-starts while a restorable snapshot exists.
TEST(ChaosRecoveryTest, RestoreFallsBackToNextBestCandidateBeforeColdStart) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());

  uint64_t total_fallbacks = 0;
  size_t pool_size = 0;
  // One run per choice of survivor. Every harness is built from the same
  // seeds, so all runs see the identical pool and candidate ranking; exactly
  // one choice coincides with the policy's first pick (no fallback needed),
  // every other choice forces the walk past at least one corrupt candidate.
  for (size_t keep = 0; keep < 3; ++keep) {
    ChaosHarness h(*policy);
    h.RunLifetimes(3);
    const std::vector<PoolEntry> entries = h.PoolEntries();
    ASSERT_EQ(entries.size(), 3u);
    pool_size = entries.size();
    for (size_t i = 0; i < entries.size(); ++i) {
      if (i != keep) {
        h.CorruptBlob(entries[i].object_key);
      }
    }

    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    EXPECT_TRUE(session->restored) << "survivor " << keep << " not reached";
    EXPECT_EQ(session->restored_from.value, entries[keep].metadata.id.value);
    total_fallbacks += h.orchestrator.recovery_stats().restore_fallbacks;
  }
  // All but the first-ranked survivor required an actual fallback restore.
  EXPECT_EQ(total_fallbacks, pool_size - 1);
}

// A snapshot that keeps failing accumulates strikes in the shared ledger and
// is quarantined at the threshold: evicted from the pool, its blob deleted.
TEST(ChaosRecoveryTest, PersistentlyCorruptSnapshotsAreQuarantined) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ChaosHarness h(*policy);
  h.RunLifetimes(3);
  const std::vector<PoolEntry> entries = h.PoolEntries();
  ASSERT_EQ(entries.size(), 3u);
  for (const PoolEntry& entry : entries) {
    h.CorruptBlob(entry.object_key);
  }

  // Default quarantine threshold is 3 strikes; each start attempts every
  // ranked candidate, so three starts exhaust every snapshot's strikes.
  for (int start = 0; start < 3; ++start) {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    EXPECT_FALSE(session->restored);  // Never a half-built session.
  }

  const RecoveryStats& stats = h.orchestrator.recovery_stats();
  EXPECT_EQ(stats.snapshots_quarantined, 3u);
  EXPECT_GE(stats.restore_attempt_failures, 9u);

  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->pool.size(), 0u);                 // Evicted from the pool.
  EXPECT_TRUE(state->restore_failures.empty());      // Ledger entries cleared.
  EXPECT_TRUE(h.object_store.ListKeys("snapshots/").empty());  // Blobs deleted.
}

// A successful restore clears any strikes the snapshot accumulated from
// earlier transient trouble, so healthy snapshots never age into quarantine.
TEST(ChaosRecoveryTest, SuccessfulRestoreClearsLedgerStrikes) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ChaosHarness h(*policy);
  h.RunLifetimes(1);
  const std::vector<PoolEntry> entries = h.PoolEntries();
  ASSERT_EQ(entries.size(), 1u);

  // Plant two strikes (one shy of the threshold) as if earlier restores had
  // failed transiently.
  ASSERT_TRUE(h.state_store
                  .Update([&](PolicyState& state) {
                    state.restore_failures[entries[0].metadata.id.value] = 2;
                  })
                  .ok());

  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->restored);
  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_TRUE(state->restore_failures.empty());
  EXPECT_EQ(h.orchestrator.recovery_stats().snapshots_quarantined, 0u);
}

// A pool entry whose object vanished (concurrent eviction) is pruned rather
// than repeatedly retried, and the worker cold-starts cleanly.
TEST(ChaosRecoveryTest, MissingObjectPrunesStaleEntryAndColdStarts) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ChaosHarness h(*policy);
  h.RunLifetimes(1);
  const std::vector<PoolEntry> entries = h.PoolEntries();
  ASSERT_EQ(entries.size(), 1u);
  ASSERT_TRUE(h.object_store.Delete(entries[0].object_key).ok());

  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->restored);
  EXPECT_EQ(session->process.requests_executed(), 0u);
  EXPECT_EQ(h.orchestrator.recovery_stats().stale_entries_pruned, 1u);
  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->pool.size(), 0u);
}

// Database outage at launch: the worker still comes up (degraded cold start,
// no checkpoint plan), buffers its latency observations locally, and replays
// them with the first knowledge write after the Database recovers.
TEST(ChaosRecoveryTest, DatabaseOutageDegradesStartAndReplaysBufferedObservations) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile& profile = **WorkloadRegistry::Default().Find("DynamicHTML");

  SimClock clock;
  InMemoryKvDatabase inner_db;
  FaultPlan plan;
  FaultWindow window;
  window.kind = FaultWindow::Kind::kOutage;
  window.domain = FaultDomain::kDatabase;
  window.start = TimePoint();
  window.end = TimePoint() + Duration::Seconds(3600);
  plan.windows.push_back(window);
  FaultyKvDatabase db(inner_db, plan, &clock);

  InMemoryObjectStore object_store;
  CriuLikeEngine engine(1);
  PolicyStateStore state_store(db, profile.name, policy->config(), &clock);
  FlatSnapshotStore snapshot_store(object_store);
  Orchestrator orchestrator(profile, WorkloadRegistry::Default(), *policy, engine,
                            snapshot_store, state_store, clock, /*seed=*/7);

  auto session = orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->degraded);
  EXPECT_FALSE(session->restored);
  EXPECT_FALSE(session->checkpoint_at.has_value());
  EXPECT_EQ(orchestrator.recovery_stats().degraded_starts, 1u);

  // Three requests inside the outage: served fine, knowledge buffered.
  for (uint64_t i = 1; i <= 3; ++i) {
    auto outcome = orchestrator.ServeRequest(*session, {i, 1.0});
    ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  }
  EXPECT_EQ(orchestrator.recovery_stats().observations_buffered, 3u);
  EXPECT_TRUE(inner_db.ListKeys("").empty());  // Nothing committed yet.

  // Database recovers; the next request's write flushes the backlog.
  clock.AdvanceTo(TimePoint() + Duration::Seconds(3601));
  auto outcome = orchestrator.ServeRequest(*session, {4, 1.0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(orchestrator.recovery_stats().observations_replayed, 3u);

  auto state = state_store.Load();
  ASSERT_TRUE(state.ok());
  for (uint64_t i = 1; i <= 4; ++i) {
    EXPECT_TRUE(state->theta.IsExplored(i)) << "request " << i;
  }
}

// Orphaned blobs under the deployment's prefix (torn writes, failed metadata
// commits, deferred eviction deletes) are reaped by GC; referenced snapshots
// are left alone.
TEST(ChaosRecoveryTest, CollectOrphanedObjectsReapsOnlyUnreferencedBlobs) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  ChaosHarness h(*policy);
  h.RunLifetimes(1);
  const std::vector<PoolEntry> entries = h.PoolEntries();
  ASSERT_EQ(entries.size(), 1u);

  const std::string orphan_key = "snapshots/" + h.profile.name + "/999999";
  ObjectBlob orphan({0xde, 0xad, 0xbe, 0xef}, 4);
  ASSERT_TRUE(h.object_store.Put(orphan_key, std::move(orphan)).ok());

  auto collected = h.orchestrator.CollectOrphanedObjects();
  ASSERT_TRUE(collected.ok());
  EXPECT_EQ(*collected, 1u);
  EXPECT_FALSE(h.object_store.Contains(orphan_key));
  EXPECT_TRUE(h.object_store.Contains(entries[0].object_key));
  EXPECT_EQ(h.orchestrator.recovery_stats().orphans_collected, 1u);
}

// The Table-4 acceptance bar: with 10% transient faults on every store and
// database operation (plus image corruption), the request-centric policy
// still converges within W + 100 requests of the fault-free budget.
TEST(ChaosRecoveryTest, PolicyConvergesUnderTenPercentFaultRate) {
  const WorkloadProfile& profile = **WorkloadRegistry::Default().Find("DynamicHTML");
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  config.retain_top_percent = 40.0;
  config.retain_random_percent = 10.0;
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());

  SimOptions options;
  options.seed = 42;
  options.faults.get_failure_rate = 0.10;
  options.faults.put_failure_rate = 0.10;
  options.faults.delete_failure_rate = 0.10;
  options.faults.metadata_failure_rate = 0.10;
  options.faults.corruption_rate = 0.02;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, **eviction,
                         options);
  auto report = sim.RunClosedLoop(600);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  // Faults actually fired, and the recovery machinery absorbed them.
  EXPECT_GT(report->faults.store_faults + report->faults.db_faults, 0u);

  const auto convergence = ConvergenceRequest(report->records, 20, 0.02);
  ASSERT_TRUE(convergence.has_value());
  EXPECT_LE(*convergence, config.max_checkpoint_request + 100);
}

}  // namespace
}  // namespace pronghorn
