#include "src/core/snapshot_pool.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/common/bytes.h"

namespace pronghorn {
namespace {

PoolEntry Entry(uint64_t id, uint64_t request_number) {
  PoolEntry entry;
  entry.metadata.id = SnapshotId{id};
  entry.metadata.function = "f";
  entry.metadata.request_number = request_number;
  entry.metadata.logical_size_bytes = 1000 * id;
  entry.object_key = "snapshots/f/" + std::to_string(id);
  return entry;
}

TEST(SnapshotPoolTest, AddAndFind) {
  SnapshotPool pool;
  ASSERT_TRUE(pool.Add(Entry(1, 10)).ok());
  ASSERT_TRUE(pool.Add(Entry(2, 20)).ok());
  EXPECT_EQ(pool.size(), 2u);
  EXPECT_FALSE(pool.empty());

  auto found = pool.Find(SnapshotId{2});
  ASSERT_TRUE(found.ok());
  EXPECT_EQ((*found)->metadata.request_number, 20u);
  EXPECT_EQ(pool.Find(SnapshotId{3}).status().code(), StatusCode::kNotFound);
  EXPECT_TRUE(pool.Contains(SnapshotId{1}));
  EXPECT_FALSE(pool.Contains(SnapshotId{9}));
}

TEST(SnapshotPoolTest, RejectsDuplicateIds) {
  SnapshotPool pool;
  ASSERT_TRUE(pool.Add(Entry(1, 10)).ok());
  EXPECT_EQ(pool.Add(Entry(1, 99)).code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(pool.size(), 1u);
}

TEST(SnapshotPoolTest, PruneKeepsTopByWeight) {
  SnapshotPool pool;
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(pool.Add(Entry(i, i * 10)).ok());
  }
  // Weights increasing with id: ids 7-10 are the top 40%.
  std::vector<double> weights;
  for (uint64_t i = 1; i <= 10; ++i) {
    weights.push_back(static_cast<double>(i));
  }
  Rng rng(1);
  const auto removed = pool.Prune(weights, /*top_percent=*/40.0,
                                  /*random_percent=*/0.0, rng);
  EXPECT_EQ(pool.size(), 4u);
  EXPECT_EQ(removed.size(), 6u);
  for (uint64_t id : {7u, 8u, 9u, 10u}) {
    EXPECT_TRUE(pool.Contains(SnapshotId{id})) << id;
  }
}

TEST(SnapshotPoolTest, PruneKeepsRandomSubsetToo) {
  // With gamma > 0, pruning keeps top-p plus gamma% random survivors from
  // the remainder (hill-climbing escape hatch).
  Rng rng(7);
  size_t total_low_survivors = 0;
  const int trials = 200;
  for (int t = 0; t < trials; ++t) {
    SnapshotPool pool;
    std::vector<double> weights;
    for (uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(pool.Add(Entry(i, i * 10)).ok());
      weights.push_back(static_cast<double>(i));
    }
    (void)pool.Prune(weights, 40.0, 10.0, rng);
    EXPECT_EQ(pool.size(), 5u);  // ceil(4) top + floor(1) random.
    for (uint64_t id = 1; id <= 6; ++id) {
      if (pool.Contains(SnapshotId{id})) {
        ++total_low_survivors;
      }
    }
  }
  // Exactly one low-weight survivor per trial, spread across ids.
  EXPECT_EQ(total_low_survivors, static_cast<size_t>(trials));
}

TEST(SnapshotPoolTest, RandomSurvivorIsUniformAcrossRemainder) {
  Rng rng(11);
  std::vector<int> survivor_counts(7, 0);  // Ids 1..6 tracked.
  for (int t = 0; t < 1200; ++t) {
    SnapshotPool pool;
    std::vector<double> weights;
    for (uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(pool.Add(Entry(i, i * 10)).ok());
      weights.push_back(static_cast<double>(i));
    }
    (void)pool.Prune(weights, 40.0, 10.0, rng);
    for (uint64_t id = 1; id <= 6; ++id) {
      if (pool.Contains(SnapshotId{id})) {
        survivor_counts[id] += 1;
      }
    }
  }
  for (uint64_t id = 1; id <= 6; ++id) {
    EXPECT_NEAR(survivor_counts[id] / 1200.0, 1.0 / 6.0, 0.05) << "id " << id;
  }
}

TEST(SnapshotPoolTest, PruneNeverEmptiesPool) {
  SnapshotPool pool;
  ASSERT_TRUE(pool.Add(Entry(1, 10)).ok());
  std::vector<double> weights = {0.0};
  Rng rng(2);
  const auto removed = pool.Prune(weights, /*top_percent=*/0.0, 0.0, rng);
  EXPECT_EQ(pool.size(), 1u);
  EXPECT_TRUE(removed.empty());
}

TEST(SnapshotPoolTest, PruneWithMismatchedWeightsIsNoOp) {
  SnapshotPool pool;
  ASSERT_TRUE(pool.Add(Entry(1, 10)).ok());
  ASSERT_TRUE(pool.Add(Entry(2, 20)).ok());
  std::vector<double> weights = {1.0};  // Wrong size.
  Rng rng(3);
  EXPECT_TRUE(pool.Prune(weights, 40.0, 10.0, rng).empty());
  EXPECT_EQ(pool.size(), 2u);
}

TEST(SnapshotPoolTest, PruneTieBreaksByRecency) {
  SnapshotPool pool;
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(pool.Add(Entry(i, i)).ok());
  }
  const std::vector<double> weights = {1.0, 1.0, 1.0, 1.0};
  Rng rng(4);
  (void)pool.Prune(weights, /*top_percent=*/50.0, 0.0, rng);
  // All weights equal: the two newest (highest id) snapshots survive.
  EXPECT_TRUE(pool.Contains(SnapshotId{3}));
  EXPECT_TRUE(pool.Contains(SnapshotId{4}));
}

TEST(SnapshotPoolTest, RemovedEntriesAreReturnedIntact) {
  SnapshotPool pool;
  for (uint64_t i = 1; i <= 5; ++i) {
    ASSERT_TRUE(pool.Add(Entry(i, i * 7)).ok());
  }
  const std::vector<double> weights = {5, 4, 3, 2, 1};
  Rng rng(5);
  const auto removed = pool.Prune(weights, 40.0, 0.0, rng);
  ASSERT_EQ(removed.size(), 3u);
  std::set<uint64_t> removed_ids;
  for (const PoolEntry& entry : removed) {
    removed_ids.insert(entry.metadata.id.value);
    EXPECT_FALSE(entry.object_key.empty());
  }
  EXPECT_EQ(removed_ids, (std::set<uint64_t>{3, 4, 5}));
}

TEST(SnapshotPoolTest, SerializationRoundTrip) {
  SnapshotPool pool;
  for (uint64_t i = 1; i <= 6; ++i) {
    PoolEntry entry = Entry(i, i * 11);
    entry.metadata.created_at = TimePoint::FromMicros(static_cast<int64_t>(i) * 1000);
    ASSERT_TRUE(pool.Add(std::move(entry)).ok());
  }
  ByteWriter writer;
  pool.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = SnapshotPool::Deserialize(reader);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(*restored, pool);
}

TEST(SnapshotPoolTest, DeserializeRejectsDuplicates) {
  SnapshotPool pool;
  ASSERT_TRUE(pool.Add(Entry(1, 10)).ok());
  ByteWriter writer;
  // Two copies of the same pool entry stream.
  writer.WriteVarint(2);
  for (int i = 0; i < 2; ++i) {
    const PoolEntry entry = Entry(1, 10);
    writer.WriteUint64(entry.metadata.id.value);
    writer.WriteString(entry.metadata.function);
    writer.WriteVarint(entry.metadata.request_number);
    writer.WriteVarint(entry.metadata.logical_size_bytes);
    writer.WriteInt64(0);
    writer.WriteString(entry.object_key);
  }
  ByteReader reader(writer.data());
  EXPECT_FALSE(SnapshotPool::Deserialize(reader).ok());
}

}  // namespace
}  // namespace pronghorn
