#include "src/store/fault_injection.h"

#include <gtest/gtest.h>

#include "src/checkpoint/criu_like_engine.h"
#include "src/core/orchestrator.h"
#include "src/core/request_centric_policy.h"

namespace pronghorn {
namespace {

ObjectBlob Blob(std::string_view text) {
  ObjectBlob blob;
  blob.bytes.assign(text.begin(), text.end());
  blob.logical_size = text.size();
  return blob;
}

TEST(FaultyObjectStoreTest, ZeroRateIsTransparent) {
  InMemoryObjectStore inner;
  FaultyObjectStore store(inner, FaultPlan{});
  ASSERT_TRUE(store.Put("k", Blob("v")).ok());
  ASSERT_TRUE(store.Get("k").ok());
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_EQ(store.faults_injected(), 0u);
}

TEST(FaultyObjectStoreTest, InjectsAtConfiguredRate) {
  InMemoryObjectStore inner;
  ASSERT_TRUE(inner.Put("k", Blob("v")).ok());
  FaultPlan plan;
  plan.get_failure_rate = 0.5;
  plan.seed = 1;
  FaultyObjectStore store(inner, plan);
  int failures = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    auto got = store.Get("k");
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
      ++failures;
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / trials, 0.5, 0.05);
  EXPECT_EQ(store.faults_injected(), static_cast<uint64_t>(failures));
}

TEST(FaultyObjectStoreTest, AlwaysFailMode) {
  InMemoryObjectStore inner;
  FaultPlan plan;
  plan.put_failure_rate = 1.0;
  FaultyObjectStore store(inner, plan);
  EXPECT_EQ(store.Put("k", Blob("v")).code(), StatusCode::kUnavailable);
  EXPECT_FALSE(inner.Contains("k"));  // Nothing reached the inner store.
}

TEST(FaultyKvDatabaseTest, ReadsAndWritesFailIndependently) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.get_failure_rate = 1.0;
  plan.put_failure_rate = 0.0;
  FaultyKvDatabase db(inner, plan);
  ASSERT_TRUE(db.Put("k", {1}).ok());
  EXPECT_EQ(db.Get("k").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(db.GetVersioned("k").status().code(), StatusCode::kUnavailable);
  // Increment counts as a write.
  EXPECT_TRUE(db.Increment("counter").ok());
}

TEST(FaultyKvDatabaseTest, CasCountsAsWrite) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.put_failure_rate = 1.0;
  FaultyKvDatabase db(inner, plan);
  EXPECT_EQ(db.CompareAndSwap("k", 0, {1}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(db.Increment("k").status().code(), StatusCode::kUnavailable);
}

TEST(PolicyStateStoreResilienceTest, RetriesTransientDatabaseFailures) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.get_failure_rate = 0.3;
  plan.put_failure_rate = 0.3;
  plan.seed = 2;
  FaultyKvDatabase db(inner, plan);
  PolicyStateStore store(db, "fn", PolicyConfig{});

  // With 30% fault rates and bounded retries, updates still succeed reliably.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store
                    .Update([i](PolicyState& state) {
                      state.theta.Update(static_cast<uint64_t>(i % 20) + 1, 0.1, 0.3);
                    })
                    .ok())
        << "update " << i;
    ASSERT_TRUE(store.AllocateSnapshotId().ok());
  }
  auto state = store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->theta.ExploredCount(), 20u);
  EXPECT_GT(db.faults_injected(), 0u);  // Faults actually fired.
}

TEST(PolicyStateStoreResilienceTest, PersistentOutageSurfaces) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.get_failure_rate = 1.0;
  plan.put_failure_rate = 1.0;
  FaultyKvDatabase db(inner, plan);
  PolicyStateStore store(db, "fn", PolicyConfig{});
  EXPECT_EQ(store.Load().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.Update([](PolicyState&) {}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.AllocateSnapshotId().status().code(), StatusCode::kUnavailable);
}

TEST(OrchestratorResilienceTest, RestoreFaultsFallBackToColdStart) {
  // An orchestrator whose object store drops every read must still launch
  // workers: restore failures degrade to cold starts, never to errors.
  const auto profile = WorkloadRegistry::Default().Find("DynamicHTML");
  ASSERT_TRUE(profile.ok());
  PolicyConfig config;
  config.beta = 2;
  config.pool_capacity = 4;
  config.max_checkpoint_request = 20;
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore inner_store;
  FaultPlan plan;
  plan.get_failure_rate = 1.0;  // Every snapshot download fails.
  FaultyObjectStore object_store(inner_store, plan);
  CriuLikeEngine engine(3);
  PolicyStateStore state_store(db, (*profile)->name, config);
  Orchestrator orchestrator(**profile, WorkloadRegistry::Default(), *policy, engine,
                            object_store, state_store, clock, /*seed=*/9);

  for (int lifetime = 0; lifetime < 5; ++lifetime) {
    auto session = orchestrator.StartWorker();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_FALSE(session->restored);  // Downloads always fail -> cold.
    for (uint64_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(orchestrator.ServeRequest(*session, {i, 1.0}).ok());
    }
  }
  EXPECT_GT(object_store.faults_injected(), 0u);
}

}  // namespace
}  // namespace pronghorn
