#include "src/store/fault_injection.h"
#include "src/store/snapshot_store.h"

#include <gtest/gtest.h>

#include "src/checkpoint/criu_like_engine.h"
#include "src/core/orchestrator.h"
#include "src/core/request_centric_policy.h"

namespace pronghorn {
namespace {

ObjectBlob Blob(std::string_view text) {
  return ObjectBlob(std::vector<uint8_t>(text.begin(), text.end()), text.size());
}

TEST(FaultyObjectStoreTest, ZeroRateIsTransparent) {
  InMemoryObjectStore inner;
  FaultyObjectStore store(inner, FaultPlan{});
  ASSERT_TRUE(store.Put("k", Blob("v")).ok());
  ASSERT_TRUE(store.Get("k").ok());
  ASSERT_TRUE(store.Delete("k").ok());
  EXPECT_EQ(store.faults_injected(), 0u);
}

TEST(FaultyObjectStoreTest, InjectsAtConfiguredRate) {
  InMemoryObjectStore inner;
  ASSERT_TRUE(inner.Put("k", Blob("v")).ok());
  FaultPlan plan;
  plan.get_failure_rate = 0.5;
  plan.seed = 1;
  FaultyObjectStore store(inner, plan);
  int failures = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    auto got = store.Get("k");
    if (!got.ok()) {
      EXPECT_EQ(got.status().code(), StatusCode::kUnavailable);
      ++failures;
    }
  }
  EXPECT_NEAR(static_cast<double>(failures) / trials, 0.5, 0.05);
  EXPECT_EQ(store.faults_injected(), static_cast<uint64_t>(failures));
}

TEST(FaultyObjectStoreTest, AlwaysFailMode) {
  InMemoryObjectStore inner;
  FaultPlan plan;
  plan.put_failure_rate = 1.0;
  FaultyObjectStore store(inner, plan);
  EXPECT_EQ(store.Put("k", Blob("v")).code(), StatusCode::kUnavailable);
  EXPECT_FALSE(inner.Contains("k"));  // Nothing reached the inner store.
}

TEST(FaultyObjectStoreTest, MetadataFaultsHideKeys) {
  InMemoryObjectStore inner;
  ASSERT_TRUE(inner.Put("snapshots/a", Blob("v")).ok());
  FaultPlan plan;
  plan.metadata_failure_rate = 1.0;
  FaultyObjectStore store(inner, plan);
  EXPECT_FALSE(store.Contains("snapshots/a"));
  EXPECT_TRUE(store.ListKeys("snapshots/").empty());
  EXPECT_EQ(store.stats().metadata_faults, 2u);
  // The data path is untouched: the blob is still readable.
  EXPECT_TRUE(store.Get("snapshots/a").ok());
}

TEST(FaultyObjectStoreTest, TornWriteStoresTruncatedPrefixAndFails) {
  InMemoryObjectStore inner;
  FaultPlan plan;
  plan.torn_write_rate = 1.0;
  FaultyObjectStore store(inner, plan);
  EXPECT_EQ(store.Put("k", Blob("0123456789")).code(), StatusCode::kUnavailable);
  // Half the payload landed anyway — the partial-upload garbage GC must clean.
  auto stored = inner.Get("k");
  ASSERT_TRUE(stored.ok());
  EXPECT_EQ(stored->bytes().size(), 5u);
  EXPECT_EQ(store.stats().torn_puts, 1u);
}

TEST(FaultyObjectStoreTest, CorruptionFlipsOneBitAndReportsSuccess) {
  InMemoryObjectStore inner;
  FaultPlan plan;
  plan.corruption_rate = 1.0;
  plan.seed = 3;
  FaultyObjectStore store(inner, plan);
  const ObjectBlob original = Blob("snapshot-image-payload");
  ASSERT_TRUE(store.Put("k", original).ok());  // The write "succeeds".
  auto stored = inner.Get("k");
  ASSERT_TRUE(stored.ok());
  ASSERT_EQ(stored->bytes().size(), original.bytes().size());
  size_t flipped_bits = 0;
  for (size_t i = 0; i < stored->bytes().size(); ++i) {
    uint8_t diff = static_cast<uint8_t>(stored->bytes()[i] ^ original.bytes()[i]);
    while (diff != 0) {
      flipped_bits += diff & 1u;
      diff = static_cast<uint8_t>(diff >> 1);
    }
  }
  EXPECT_EQ(flipped_bits, 1u);
  EXPECT_EQ(store.stats().corrupted_puts, 1u);
}

TEST(FaultyObjectStoreTest, OutageWindowFailsEveryOpWhileOpen) {
  SimClock clock;
  InMemoryObjectStore inner;
  ASSERT_TRUE(inner.Put("k", Blob("v")).ok());
  FaultPlan plan;
  FaultWindow window;
  window.kind = FaultWindow::Kind::kOutage;
  window.domain = FaultDomain::kObjectStore;
  window.start = TimePoint() + Duration::Seconds(10);
  window.end = TimePoint() + Duration::Seconds(20);
  plan.windows.push_back(window);
  FaultyObjectStore store(inner, plan, &clock);

  EXPECT_TRUE(store.Get("k").ok());  // Before the window.
  clock.Advance(Duration::Seconds(15));
  EXPECT_EQ(store.Get("k").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.Put("k2", Blob("v")).code(), StatusCode::kUnavailable);
  clock.Advance(Duration::Seconds(10));
  EXPECT_TRUE(store.Get("k").ok());  // After the window.
  EXPECT_EQ(store.stats().outage_faults, 2u);
}

TEST(FaultyObjectStoreTest, OutageWindowScopedToOtherDomainIsIgnored) {
  SimClock clock;
  InMemoryObjectStore inner;
  ASSERT_TRUE(inner.Put("k", Blob("v")).ok());
  FaultPlan plan;
  FaultWindow window;
  window.domain = FaultDomain::kDatabase;  // Database-only outage.
  window.start = TimePoint();
  window.end = TimePoint() + Duration::Seconds(100);
  plan.windows.push_back(window);
  FaultyObjectStore store(inner, plan, &clock);
  clock.Advance(Duration::Seconds(5));
  EXPECT_TRUE(store.Get("k").ok());
  EXPECT_EQ(store.faults_injected(), 0u);
}

TEST(FaultyObjectStoreTest, LatencyWindowAdvancesClock) {
  SimClock clock;
  InMemoryObjectStore inner;
  ASSERT_TRUE(inner.Put("k", Blob("v")).ok());
  FaultPlan plan;
  FaultWindow window;
  window.kind = FaultWindow::Kind::kLatency;
  window.start = TimePoint();
  window.end = TimePoint() + Duration::Seconds(10);
  window.extra_latency = Duration::Millis(250);
  plan.windows.push_back(window);
  FaultyObjectStore store(inner, plan, &clock);

  const TimePoint before = clock.now();
  EXPECT_TRUE(store.Get("k").ok());
  EXPECT_EQ(clock.now() - before, Duration::Millis(250));
  EXPECT_EQ(store.stats().latency_injections, 1u);
  // Outside the window the op is full speed again.
  clock.AdvanceTo(TimePoint() + Duration::Seconds(11));
  const TimePoint after = clock.now();
  EXPECT_TRUE(store.Get("k").ok());
  EXPECT_EQ(clock.now(), after);
}

TEST(FaultyKvDatabaseTest, MetadataFaultsHideKeys) {
  InMemoryKvDatabase inner;
  ASSERT_TRUE(inner.Put("state/fn", {1}).ok());
  FaultPlan plan;
  plan.metadata_failure_rate = 1.0;
  FaultyKvDatabase db(inner, plan);
  EXPECT_TRUE(db.ListKeys("state/").empty());
  EXPECT_EQ(db.stats().metadata_faults, 1u);
}

TEST(FaultyKvDatabaseTest, OutageWindowCoversDatabaseDomain) {
  SimClock clock;
  InMemoryKvDatabase inner;
  ASSERT_TRUE(inner.Put("k", {1}).ok());
  FaultPlan plan;
  FaultWindow window;
  window.domain = FaultDomain::kDatabase;
  window.start = TimePoint();
  window.end = TimePoint() + Duration::Seconds(2);
  plan.windows.push_back(window);
  FaultyKvDatabase db(inner, plan, &clock);
  EXPECT_EQ(db.Get("k").status().code(), StatusCode::kUnavailable);
  clock.Advance(Duration::Seconds(3));
  EXPECT_TRUE(db.Get("k").ok());
}

TEST(FaultPlanTest, ActiveDetectsAnyFaultSource) {
  EXPECT_FALSE(FaultPlan{}.Active());
  FaultPlan rates;
  rates.torn_write_rate = 0.01;
  EXPECT_TRUE(rates.Active());
  FaultPlan windows;
  windows.windows.push_back(FaultWindow{});
  EXPECT_TRUE(windows.Active());
}

TEST(FaultyKvDatabaseTest, ReadsAndWritesFailIndependently) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.get_failure_rate = 1.0;
  plan.put_failure_rate = 0.0;
  FaultyKvDatabase db(inner, plan);
  ASSERT_TRUE(db.Put("k", {1}).ok());
  EXPECT_EQ(db.Get("k").status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(db.GetVersioned("k").status().code(), StatusCode::kUnavailable);
  // Increment counts as a write.
  EXPECT_TRUE(db.Increment("counter").ok());
}

TEST(FaultyKvDatabaseTest, CasCountsAsWrite) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.put_failure_rate = 1.0;
  FaultyKvDatabase db(inner, plan);
  EXPECT_EQ(db.CompareAndSwap("k", 0, {1}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(db.Increment("k").status().code(), StatusCode::kUnavailable);
}

TEST(PolicyStateStoreResilienceTest, RetriesTransientDatabaseFailures) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.get_failure_rate = 0.3;
  plan.put_failure_rate = 0.3;
  plan.seed = 2;
  FaultyKvDatabase db(inner, plan);
  PolicyStateStore store(db, "fn", PolicyConfig{});

  // With 30% fault rates and bounded retries, updates still succeed reliably.
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(store
                    .Update([i](PolicyState& state) {
                      state.theta.Update(static_cast<uint64_t>(i % 20) + 1, 0.1, 0.3);
                    })
                    .ok())
        << "update " << i;
    ASSERT_TRUE(store.AllocateSnapshotId().ok());
  }
  auto state = store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->theta.ExploredCount(), 20u);
  EXPECT_GT(db.faults_injected(), 0u);  // Faults actually fired.
}

TEST(PolicyStateStoreResilienceTest, PersistentOutageSurfaces) {
  InMemoryKvDatabase inner;
  FaultPlan plan;
  plan.get_failure_rate = 1.0;
  plan.put_failure_rate = 1.0;
  FaultyKvDatabase db(inner, plan);
  PolicyStateStore store(db, "fn", PolicyConfig{});
  EXPECT_EQ(store.Load().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.Update([](PolicyState&) {}).code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.AllocateSnapshotId().status().code(), StatusCode::kUnavailable);
}

TEST(OrchestratorResilienceTest, RestoreFaultsFallBackToColdStart) {
  // An orchestrator whose object store drops every read must still launch
  // workers: restore failures degrade to cold starts, never to errors.
  const auto profile = WorkloadRegistry::Default().Find("DynamicHTML");
  ASSERT_TRUE(profile.ok());
  PolicyConfig config;
  config.beta = 2;
  config.pool_capacity = 4;
  config.max_checkpoint_request = 20;
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore inner_store;
  FaultPlan plan;
  plan.get_failure_rate = 1.0;  // Every snapshot download fails.
  FaultyObjectStore object_store(inner_store, plan);
  CriuLikeEngine engine(3);
  PolicyStateStore state_store(db, (*profile)->name, config);
  FlatSnapshotStore snapshot_store(object_store);
  Orchestrator orchestrator(**profile, WorkloadRegistry::Default(), *policy, engine,
                            snapshot_store, state_store, clock, /*seed=*/9);

  for (int lifetime = 0; lifetime < 5; ++lifetime) {
    auto session = orchestrator.StartWorker();
    ASSERT_TRUE(session.ok()) << session.status().ToString();
    EXPECT_FALSE(session->restored);  // Downloads always fail -> cold.
    for (uint64_t i = 0; i < 2; ++i) {
      ASSERT_TRUE(orchestrator.ServeRequest(*session, {i, 1.0}).ok());
    }
  }
  EXPECT_GT(object_store.faults_injected(), 0u);
}

}  // namespace
}  // namespace pronghorn
