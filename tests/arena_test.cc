#include "src/common/arena.h"

#include <cstdint>
#include <cstring>
#include <vector>

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

bool IsAligned(const void* p, size_t alignment) {
  return reinterpret_cast<uintptr_t>(p) % alignment == 0;
}

TEST(ArenaTest, AllocationsRespectRequestedAlignment) {
  Arena arena;
  // Interleave odd sizes with strict alignments so padding paths are hit.
  void* a = arena.Allocate(1, 1);
  void* b = arena.Allocate(3, 8);
  void* c = arena.Allocate(7, 64);
  void* d = arena.Allocate(13, 16);
  EXPECT_TRUE(IsAligned(b, 8));
  EXPECT_TRUE(IsAligned(c, 64));
  EXPECT_TRUE(IsAligned(d, 16));
  EXPECT_NE(a, b);
  EXPECT_NE(b, c);
  EXPECT_NE(c, d);
}

TEST(ArenaTest, DefaultAlignmentSuitsAnyScalar) {
  Arena arena;
  for (int i = 0; i < 100; ++i) {
    void* p = arena.Allocate(1);
    EXPECT_TRUE(IsAligned(p, alignof(std::max_align_t)));
  }
}

TEST(ArenaTest, AllocateSpanIsWritableAndAligned) {
  Arena arena;
  auto doubles = arena.AllocateSpan<double>(200);
  ASSERT_EQ(doubles.size(), 200u);
  EXPECT_TRUE(IsAligned(doubles.data(), alignof(double)));
  for (size_t i = 0; i < doubles.size(); ++i) {
    doubles[i] = static_cast<double>(i);
  }
  EXPECT_EQ(doubles[199], 199.0);

  auto empty = arena.AllocateSpan<int>(0);
  EXPECT_TRUE(empty.empty());
}

TEST(ArenaTest, ResetReusesRetainedBlockWithoutGrowth) {
  Arena arena(1024);
  // Warm the arena past its first block so Reset has a high-water mark to
  // retain.
  for (int i = 0; i < 8; ++i) {
    arena.Allocate(512);
  }
  arena.Reset();
  const size_t blocks_after_first_reset = arena.block_count();
  EXPECT_EQ(blocks_after_first_reset, 1u);

  // Steady state: the same allocation pattern must fit in the retained block
  // and never allocate another one. This is the property the per-decision
  // scratch relies on for its zero-allocation guarantee.
  for (int round = 0; round < 50; ++round) {
    for (int i = 0; i < 8; ++i) {
      void* p = arena.Allocate(512);
      std::memset(p, round & 0xff, 512);
    }
    arena.Reset();
    EXPECT_EQ(arena.block_count(), 1u) << "round " << round;
  }
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ArenaTest, ResetPreservesHighWaterMark) {
  Arena arena(256);
  arena.Allocate(100);
  arena.Allocate(100);
  arena.Allocate(100);
  const size_t high_water = arena.high_water_bytes();
  EXPECT_GE(high_water, 300u);
  arena.Reset();
  EXPECT_EQ(arena.high_water_bytes(), high_water);
  EXPECT_EQ(arena.bytes_allocated(), 0u);
}

TEST(ArenaTest, OversizedAllocationFallsBackToDedicatedBlock) {
  Arena arena(256);
  // Far larger than block_bytes: must still succeed and be usable.
  const size_t big = 64 * 1024;
  auto span = arena.AllocateSpan<char>(big);
  ASSERT_EQ(span.size(), big);
  std::memset(span.data(), 0x5a, big);
  EXPECT_EQ(span[big - 1], 0x5a);

  // Small allocations still work alongside the oversized block.
  void* small = arena.Allocate(16);
  EXPECT_NE(small, nullptr);

  // After Reset the retained block covers the high-water mark, so repeating
  // the oversized allocation settles into a single block.
  arena.Reset();
  auto again = arena.AllocateSpan<char>(big);
  ASSERT_EQ(again.size(), big);
  arena.Reset();
  EXPECT_EQ(arena.block_count(), 1u);
}

TEST(ArenaTest, MoveTransfersOwnership) {
  Arena source(512);
  auto span = source.AllocateSpan<int>(64);
  span[0] = 42;
  span[63] = 7;

  Arena sink(std::move(source));
  // The moved-to arena owns the memory; the values written through the old
  // span are still live because the blocks moved, not the bytes.
  EXPECT_EQ(span[0], 42);
  EXPECT_EQ(span[63], 7);
  EXPECT_GE(sink.bytes_allocated(), 64 * sizeof(int));
}

}  // namespace
}  // namespace pronghorn
