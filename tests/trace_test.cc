#include <gtest/gtest.h>

#include <filesystem>

#include "src/trace/azure_model.h"
#include "src/trace/trace_file.h"
#include "src/trace/trace_generator.h"

namespace pronghorn {
namespace {

TEST(AzureTraceModelTest, PercentileMonotoneInPopularity) {
  const AzureTraceModel model;
  double previous = 0.0;
  for (double percentile : {10.0, 25.0, 50.0, 65.0, 75.0, 90.0, 99.0}) {
    auto daily = model.DailyInvocationsAtPercentile(percentile);
    ASSERT_TRUE(daily.ok()) << percentile;
    EXPECT_GT(*daily, previous);
    previous = *daily;
  }
}

TEST(AzureTraceModelTest, MedianMatchesCalibration) {
  const AzureTraceModel model;
  auto daily = model.DailyInvocationsAtPercentile(50.0);
  ASSERT_TRUE(daily.ok());
  // Median function ~316/day => ~3.3 invocations per 15 minutes, matching
  // the paper's pathological 50th-percentile MST window (3 requests).
  EXPECT_NEAR(*daily, 316.0, 10.0);
  auto in_window = model.ExpectedArrivalsInWindow(50.0, Duration::Seconds(900));
  ASSERT_TRUE(in_window.ok());
  EXPECT_NEAR(*in_window, 3.3, 0.2);
}

TEST(AzureTraceModelTest, RejectsDegeneratePercentiles) {
  const AzureTraceModel model;
  EXPECT_FALSE(model.DailyInvocationsAtPercentile(0.0).ok());
  EXPECT_FALSE(model.DailyInvocationsAtPercentile(100.0).ok());
  EXPECT_FALSE(model.DailyInvocationsAtPercentile(-5.0).ok());
}

TEST(TraceGeneratorTest, ArrivalsSortedAndInWindow) {
  const AzureTraceModel model;
  TraceGenerator generator(model, 1);
  const Duration window = Duration::Seconds(900);
  auto arrivals = generator.GenerateWindow(90.0, window);
  ASSERT_TRUE(arrivals.ok());
  EXPECT_FALSE(arrivals->empty());
  TimePoint previous = TimePoint::FromMicros(0);
  for (TimePoint arrival : *arrivals) {
    EXPECT_GE(arrival, previous);
    EXPECT_LT(arrival.ToSeconds(), window.ToSeconds());
    previous = arrival;
  }
}

TEST(TraceGeneratorTest, PopularFunctionsGetMoreArrivals) {
  const AzureTraceModel model;
  TraceGenerator generator(model, 2);
  const Duration window = Duration::Seconds(900);
  size_t rare_total = 0;
  size_t popular_total = 0;
  for (int i = 0; i < 10; ++i) {
    rare_total += generator.GenerateWindow(50.0, window)->size();
    popular_total += generator.GenerateWindow(90.0, window)->size();
  }
  EXPECT_GT(popular_total, rare_total * 5);
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  const AzureTraceModel model;
  TraceGenerator a(model, 7);
  TraceGenerator b(model, 7);
  auto wa = a.GenerateWindow(75.0, Duration::Seconds(900));
  auto wb = b.GenerateWindow(75.0, Duration::Seconds(900));
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  EXPECT_EQ(*wa, *wb);
}

TEST(TraceGeneratorTest, MultiFunctionTraceIsMerged) {
  const AzureTraceModel model;
  TraceGenerator generator(model, 3);
  auto trace = generator.GenerateTrace(
      {{"MST", 75.0}, {"Thumbnailer", 75.0}}, Duration::Seconds(900));
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->empty());
  const auto functions = trace->Functions();
  EXPECT_EQ(functions.size(), 2u);
  // Merged ordering is globally sorted.
  for (size_t i = 1; i < trace->records().size(); ++i) {
    EXPECT_GE(trace->records()[i].arrival, trace->records()[i - 1].arrival);
  }
  // Per-function extraction covers everything.
  EXPECT_EQ(trace->ArrivalsFor("MST").size() +
                trace->ArrivalsFor("Thumbnailer").size(),
            trace->size());
}

TEST(InvocationTraceTest, AppendValidations) {
  InvocationTrace trace;
  EXPECT_EQ(trace.Append({"", TimePoint::FromMicros(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(trace.Append({"a,b", TimePoint::FromMicros(1)}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(trace.Append({"f", TimePoint::FromMicros(10)}).ok());
  EXPECT_EQ(trace.Append({"f", TimePoint::FromMicros(5)}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(InvocationTraceTest, CsvRoundTripInMemory) {
  InvocationTrace trace;
  ASSERT_TRUE(trace.Append({"MST", TimePoint::FromMicros(100)}).ok());
  ASSERT_TRUE(trace.Append({"Thumbnailer", TimePoint::FromMicros(250)}).ok());
  ASSERT_TRUE(trace.Append({"MST", TimePoint::FromMicros(900)}).ok());

  auto parsed = InvocationTrace::FromCsv(trace.ToCsv());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->records(), trace.records());
}

TEST(InvocationTraceTest, CsvRoundTripThroughFile) {
  InvocationTrace trace;
  ASSERT_TRUE(trace.Append({"f", TimePoint::FromMicros(42)}).ok());
  const auto path =
      (std::filesystem::temp_directory_path() / "pronghorn_trace_test.csv").string();
  ASSERT_TRUE(trace.WriteCsv(path).ok());
  auto loaded = InvocationTrace::ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->records(), trace.records());
  std::filesystem::remove(path);
}

TEST(InvocationTraceTest, ReadMissingFileIsNotFound) {
  EXPECT_EQ(InvocationTrace::ReadCsv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(InvocationTraceTest, MalformedCsvRejected) {
  EXPECT_FALSE(InvocationTrace::FromCsv("wrong,header\nf,1\n").ok());
  EXPECT_FALSE(InvocationTrace::FromCsv("function,arrival_us\nno_comma\n").ok());
  EXPECT_FALSE(InvocationTrace::FromCsv("function,arrival_us\nf,notanumber\n").ok());
  EXPECT_FALSE(InvocationTrace::FromCsv("function,arrival_us\nf,12junk\n").ok());
}

TEST(InvocationTraceTest, EmptyCsvBody) {
  auto trace = InvocationTrace::FromCsv("function,arrival_us\n");
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->empty());
}

}  // namespace
}  // namespace pronghorn
