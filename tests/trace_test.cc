#include <gtest/gtest.h>

#include <filesystem>

#include "src/trace/azure_model.h"
#include "src/trace/trace_file.h"
#include "src/trace/trace_generator.h"

namespace pronghorn {
namespace {

TEST(AzureTraceModelTest, PercentileMonotoneInPopularity) {
  const AzureTraceModel model;
  double previous = 0.0;
  for (double percentile : {10.0, 25.0, 50.0, 65.0, 75.0, 90.0, 99.0}) {
    auto daily = model.DailyInvocationsAtPercentile(percentile);
    ASSERT_TRUE(daily.ok()) << percentile;
    EXPECT_GT(*daily, previous);
    previous = *daily;
  }
}

TEST(AzureTraceModelTest, MedianMatchesCalibration) {
  const AzureTraceModel model;
  auto daily = model.DailyInvocationsAtPercentile(50.0);
  ASSERT_TRUE(daily.ok());
  // Median function ~316/day => ~3.3 invocations per 15 minutes, matching
  // the paper's pathological 50th-percentile MST window (3 requests).
  EXPECT_NEAR(*daily, 316.0, 10.0);
  auto in_window = model.ExpectedArrivalsInWindow(50.0, Duration::Seconds(900));
  ASSERT_TRUE(in_window.ok());
  EXPECT_NEAR(*in_window, 3.3, 0.2);
}

TEST(AzureTraceModelTest, RejectsDegeneratePercentiles) {
  const AzureTraceModel model;
  EXPECT_FALSE(model.DailyInvocationsAtPercentile(0.0).ok());
  EXPECT_FALSE(model.DailyInvocationsAtPercentile(100.0).ok());
  EXPECT_FALSE(model.DailyInvocationsAtPercentile(-5.0).ok());
}

TEST(TraceGeneratorTest, ArrivalsSortedAndInWindow) {
  const AzureTraceModel model;
  TraceGenerator generator(model, 1);
  const Duration window = Duration::Seconds(900);
  auto arrivals = generator.GenerateWindow(90.0, window);
  ASSERT_TRUE(arrivals.ok());
  EXPECT_FALSE(arrivals->empty());
  TimePoint previous = TimePoint::FromMicros(0);
  for (TimePoint arrival : *arrivals) {
    EXPECT_GE(arrival, previous);
    EXPECT_LT(arrival.ToSeconds(), window.ToSeconds());
    previous = arrival;
  }
}

TEST(TraceGeneratorTest, PopularFunctionsGetMoreArrivals) {
  const AzureTraceModel model;
  TraceGenerator generator(model, 2);
  const Duration window = Duration::Seconds(900);
  size_t rare_total = 0;
  size_t popular_total = 0;
  for (int i = 0; i < 10; ++i) {
    rare_total += generator.GenerateWindow(50.0, window)->size();
    popular_total += generator.GenerateWindow(90.0, window)->size();
  }
  EXPECT_GT(popular_total, rare_total * 5);
}

TEST(TraceGeneratorTest, DeterministicForSeed) {
  const AzureTraceModel model;
  TraceGenerator a(model, 7);
  TraceGenerator b(model, 7);
  auto wa = a.GenerateWindow(75.0, Duration::Seconds(900));
  auto wb = b.GenerateWindow(75.0, Duration::Seconds(900));
  ASSERT_TRUE(wa.ok());
  ASSERT_TRUE(wb.ok());
  EXPECT_EQ(*wa, *wb);
}

TEST(TraceGeneratorTest, MultiFunctionTraceIsMerged) {
  const AzureTraceModel model;
  TraceGenerator generator(model, 3);
  auto trace = generator.GenerateTrace(
      {{"MST", 75.0}, {"Thumbnailer", 75.0}}, Duration::Seconds(900));
  ASSERT_TRUE(trace.ok());
  EXPECT_FALSE(trace->empty());
  const auto functions = trace->Functions();
  EXPECT_EQ(functions.size(), 2u);
  // Merged ordering is globally sorted.
  for (size_t i = 1; i < trace->records().size(); ++i) {
    EXPECT_GE(trace->records()[i].arrival, trace->records()[i - 1].arrival);
  }
  // Per-function extraction covers everything.
  EXPECT_EQ(trace->ArrivalsFor("MST").size() +
                trace->ArrivalsFor("Thumbnailer").size(),
            trace->size());
}

TEST(ArrivalMixTest, NamesRoundTripThroughParse) {
  for (const ArrivalMix mix : {ArrivalMix::kSteady, ArrivalMix::kDiurnal,
                               ArrivalMix::kBursty, ArrivalMix::kMultiTenant}) {
    auto parsed = ParseArrivalMix(ArrivalMixName(mix));
    ASSERT_TRUE(parsed.ok()) << ArrivalMixName(mix);
    EXPECT_EQ(*parsed, mix);
  }
  EXPECT_TRUE(ParseArrivalMix("multitenant").ok());
  EXPECT_FALSE(ParseArrivalMix("lunar").ok());
}

TEST(ArrivalMixTest, SpecsArePureFunctionsOfTheirArguments) {
  for (const ArrivalMix mix : {ArrivalMix::kSteady, ArrivalMix::kDiurnal,
                               ArrivalMix::kBursty, ArrivalMix::kMultiTenant}) {
    const FunctionArrivalSpec a = ArrivalSpecFor(mix, 9, 3, 100);
    const FunctionArrivalSpec b = ArrivalSpecFor(mix, 9, 3, 100);
    EXPECT_EQ(a.percentile, b.percentile);
    EXPECT_EQ(a.burstiness, b.burstiness);
    EXPECT_EQ(a.diurnal_amplitude, b.diurnal_amplitude);
    EXPECT_EQ(a.diurnal_phase_s, b.diurnal_phase_s);
    // Valid ranges in every mix.
    EXPECT_GT(a.percentile, 0.0);
    EXPECT_LT(a.percentile, 100.0);
    EXPECT_GE(a.diurnal_amplitude, 0.0);
    EXPECT_LT(a.diurnal_amplitude, 1.0);
  }
  // Seeds shift the draw.
  EXPECT_NE(ArrivalSpecFor(ArrivalMix::kDiurnal, 1, 3, 100).diurnal_phase_s,
            ArrivalSpecFor(ArrivalMix::kDiurnal, 2, 3, 100).diurnal_phase_s);
}

TEST(ArrivalMixTest, MixesShapeTheSpecsTheWayTheyAdvertise) {
  const uint64_t n = 200;
  // Diurnal functions actually swing; steady ones never do.
  for (uint64_t i = 0; i < n; ++i) {
    EXPECT_EQ(ArrivalSpecFor(ArrivalMix::kSteady, 5, i, n).diurnal_amplitude, 0.0);
    EXPECT_GE(ArrivalSpecFor(ArrivalMix::kDiurnal, 5, i, n).diurnal_amplitude, 0.5);
    EXPECT_GE(ArrivalSpecFor(ArrivalMix::kBursty, 5, i, n).burstiness, 1.2);
  }
  // Multi-tenant: a sparse heavy head and a long quiet tail.
  size_t heavy = 0, quiet = 0;
  for (uint64_t i = 0; i < n; ++i) {
    const double p = ArrivalSpecFor(ArrivalMix::kMultiTenant, 5, i, n).percentile;
    if (p >= 90.0) ++heavy;
    if (p <= 50.0) ++quiet;
  }
  EXPECT_EQ(heavy, n / 10);
  EXPECT_EQ(quiet, n - n / 10);
}

TEST(ArrivalStreamTest, MatchesWindowContractAndIsDeterministic) {
  const AzureTraceModel model;
  FunctionArrivalSpec spec;
  spec.percentile = 90.0;
  const Duration window = Duration::Seconds(900);
  ArrivalStream a(model, spec, 11, window);
  ArrivalStream b(model, spec, 11, window);
  TimePoint previous = TimePoint::FromMicros(0);
  uint64_t n = 0;
  while (auto arrival = a.Next()) {
    EXPECT_GE(*arrival, previous);
    EXPECT_LT(arrival->ToSeconds(), window.ToSeconds());
    previous = *arrival;
    EXPECT_EQ(*b.Next(), *arrival);
    ++n;
  }
  EXPECT_EQ(b.Next(), std::nullopt);
  EXPECT_EQ(a.emitted(), n);
  EXPECT_GT(n, 0u);
}

TEST(ArrivalStreamTest, InvalidPercentileIsImmediatelyExhausted) {
  const AzureTraceModel model;
  FunctionArrivalSpec spec;
  spec.percentile = 0.0;
  ArrivalStream stream(model, spec, 1, Duration::Seconds(900));
  EXPECT_EQ(stream.Next(), std::nullopt);
}

TEST(ArrivalStreamTest, RateMatchesTheModelExpectation) {
  // Over many independent streams, the mean arrival count must track
  // ExpectedArrivalsInWindow — the streaming path must not change the
  // process's intensity (thinning must be unbiased).
  const AzureTraceModel model;
  const Duration window = Duration::Seconds(3600);
  const double expected =
      *model.ExpectedArrivalsInWindow(75.0, window);
  for (const double amplitude : {0.0, 0.8}) {
    FunctionArrivalSpec spec;
    spec.percentile = 75.0;
    spec.diurnal_amplitude = amplitude;
    // Zero phase puts the sinusoid's positive half-cycle first, but over many
    // seeds the average still must land near the base rate times the window:
    // thin against a symmetric phase spread to average the cycle out.
    uint64_t total = 0;
    const int kStreams = 400;
    for (int s = 0; s < kStreams; ++s) {
      FunctionArrivalSpec varied = spec;
      varied.diurnal_phase_s = s * 86400.0 / kStreams;
      ArrivalStream stream(model, varied, 1000 + s, window);
      while (stream.Next()) {
        ++total;
      }
    }
    const double mean = static_cast<double>(total) / kStreams;
    EXPECT_NEAR(mean, expected, expected * 0.15) << "amplitude " << amplitude;
  }
}

TEST(ArrivalStreamTest, DiurnalModulationActuallyMovesArrivalsInTime) {
  // With a full-day window and strong amplitude, arrivals must concentrate in
  // the high-rate half-cycle relative to phase — the thinning is doing work.
  const AzureTraceModel model;
  FunctionArrivalSpec spec;
  spec.percentile = 85.0;
  spec.diurnal_amplitude = 0.95;
  spec.diurnal_phase_s = 0.0;
  const Duration window = Duration::Seconds(86400);
  uint64_t first_half = 0, second_half = 0;
  for (int s = 0; s < 30; ++s) {
    ArrivalStream stream(model, spec, 500 + s, window);
    while (auto arrival = stream.Next()) {
      (arrival->ToSeconds() < 43200.0 ? first_half : second_half)++;
    }
  }
  // rate(t) = base * (1 + A sin(2π t / day)): positive half-cycle first.
  EXPECT_GT(first_half, second_half * 2);
}

TEST(FleetArrivalStreamTest, MergesPerFunctionStreamsInGlobalOrder) {
  const AzureTraceModel model;
  const uint64_t kFleet = 20;
  std::vector<FunctionArrivalSpec> specs;
  for (uint64_t i = 0; i < kFleet; ++i) {
    specs.push_back(ArrivalSpecFor(ArrivalMix::kMultiTenant, 3, i, kFleet));
  }
  const Duration window = Duration::Seconds(900);
  FleetArrivalStream merged(model, specs, 3, window);

  // Reference: drain each function's own stream independently (the substream
  // independence property) and count.
  std::vector<uint64_t> per_function(kFleet, 0);
  uint64_t expected_total = 0;
  for (uint64_t i = 0; i < kFleet; ++i) {
    ArrivalStream solo(model, specs[i],
                       HashCombine(HashCombine(uint64_t{3}, uint64_t{0x666c}),
                                   i),
                       window);
    while (solo.Next()) {
      ++per_function[i];
      ++expected_total;
    }
  }

  int64_t previous = 0;
  std::vector<uint64_t> merged_counts(kFleet, 0);
  uint64_t total = 0;
  while (auto arrival = merged.Next()) {
    EXPECT_GE(arrival->arrival.ToMicros(), previous);
    previous = arrival->arrival.ToMicros();
    ASSERT_LT(arrival->function_index, kFleet);
    ++merged_counts[arrival->function_index];
    ++total;
  }
  EXPECT_EQ(total, expected_total);
  EXPECT_EQ(merged_counts, per_function);
  EXPECT_EQ(merged.emitted(), total);
}

TEST(InvocationTraceTest, AppendValidations) {
  InvocationTrace trace;
  EXPECT_EQ(trace.Append({"", TimePoint::FromMicros(1)}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(trace.Append({"a,b", TimePoint::FromMicros(1)}).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(trace.Append({"f", TimePoint::FromMicros(10)}).ok());
  EXPECT_EQ(trace.Append({"f", TimePoint::FromMicros(5)}).code(),
            StatusCode::kFailedPrecondition);
}

TEST(InvocationTraceTest, CsvRoundTripInMemory) {
  InvocationTrace trace;
  ASSERT_TRUE(trace.Append({"MST", TimePoint::FromMicros(100)}).ok());
  ASSERT_TRUE(trace.Append({"Thumbnailer", TimePoint::FromMicros(250)}).ok());
  ASSERT_TRUE(trace.Append({"MST", TimePoint::FromMicros(900)}).ok());

  auto parsed = InvocationTrace::FromCsv(trace.ToCsv());
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->records(), trace.records());
}

TEST(InvocationTraceTest, CsvRoundTripThroughFile) {
  InvocationTrace trace;
  ASSERT_TRUE(trace.Append({"f", TimePoint::FromMicros(42)}).ok());
  const auto path =
      (std::filesystem::temp_directory_path() / "pronghorn_trace_test.csv").string();
  ASSERT_TRUE(trace.WriteCsv(path).ok());
  auto loaded = InvocationTrace::ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->records(), trace.records());
  std::filesystem::remove(path);
}

TEST(InvocationTraceTest, ReadMissingFileIsNotFound) {
  EXPECT_EQ(InvocationTrace::ReadCsv("/no/such/file.csv").status().code(),
            StatusCode::kNotFound);
}

TEST(InvocationTraceTest, MalformedCsvRejected) {
  EXPECT_FALSE(InvocationTrace::FromCsv("wrong,header\nf,1\n").ok());
  EXPECT_FALSE(InvocationTrace::FromCsv("function,arrival_us\nno_comma\n").ok());
  EXPECT_FALSE(InvocationTrace::FromCsv("function,arrival_us\nf,notanumber\n").ok());
  EXPECT_FALSE(InvocationTrace::FromCsv("function,arrival_us\nf,12junk\n").ok());
}

TEST(InvocationTraceTest, EmptyCsvBody) {
  auto trace = InvocationTrace::FromCsv("function,arrival_us\n");
  ASSERT_TRUE(trace.ok());
  EXPECT_TRUE(trace->empty());
}

}  // namespace
}  // namespace pronghorn
