// Observability layer tests: the exact-merge histogram algebra, the bounded
// trace ring, the Chrome JSON round trip, quantile-convention agreement with
// src/common/stats.h, and the end-to-end guarantee that an instrumented
// simulation emits every lifecycle phase without perturbing its digest.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/core/request_centric_policy.h"
#include "src/obs/metrics.h"
#include "src/obs/sink.h"
#include "src/obs/trace.h"
#include "src/platform/simulate.h"

namespace pronghorn {
namespace {

// Deterministic 64-bit value stream for property tests (SplitMix64).
class ValueStream {
 public:
  explicit ValueStream(uint64_t seed) : state_(seed) {}
  uint64_t Next() {
    state_ += 0x9e3779b97f4a7c15ull;
    uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
  }
  // Latency-shaped values: heavy mass in the microsecond-to-second range
  // plus occasional huge outliers that land in high octaves.
  uint64_t NextLatency() {
    const uint64_t raw = Next();
    const int shift = static_cast<int>(raw % 44);
    return (raw >> 20) >> (43 - shift);
  }

 private:
  uint64_t state_;
};

TEST(LatencyHistogramTest, BucketBoundsBracketTheirValues) {
  ValueStream stream(7);
  for (int i = 0; i < 2000; ++i) {
    const uint64_t value = stream.NextLatency();
    const size_t index = LatencyHistogram::BucketIndex(value);
    ASSERT_LT(index, LatencyHistogram::kBucketCount);
    EXPECT_LE(LatencyHistogram::BucketLowerBound(index), value) << value;
    EXPECT_LT(value, LatencyHistogram::BucketUpperBound(index)) << value;
  }
  // Unit range is exact.
  for (uint64_t v = 0; v < 16; ++v) {
    EXPECT_EQ(LatencyHistogram::BucketIndex(v), v);
    EXPECT_EQ(LatencyHistogram::BucketLowerBound(v), v);
  }
}

TEST(LatencyHistogramTest, MergeIsExactCommutativeAndAssociative) {
  // The fleet determinism guarantee rests on merges being order-insensitive:
  // shards complete in arbitrary order, yet the merged histogram must be
  // bit-identical to the single-threaded accumulation.
  LatencyHistogram a, b, c, all;
  ValueStream stream(42);
  for (int i = 0; i < 3000; ++i) {
    const uint64_t value = stream.NextLatency();
    (i % 3 == 0 ? a : i % 3 == 1 ? b : c).Add(value);
    all.Add(value);
  }

  LatencyHistogram ab_c = a;  // (a + b) + c
  ab_c.Merge(b);
  ab_c.Merge(c);
  LatencyHistogram bc = b;  // a + (b + c)
  bc.Merge(c);
  LatencyHistogram a_bc = a;
  a_bc.Merge(bc);
  LatencyHistogram ba = b;  // b + a
  ba.Merge(a);
  LatencyHistogram ab = a;  // a + b
  ab.Merge(b);

  EXPECT_EQ(ab_c, a_bc);
  EXPECT_EQ(ab, ba);
  EXPECT_EQ(ab_c, all);
  EXPECT_EQ(ab_c.count(), 3000u);
  EXPECT_EQ(ab_c.min(), all.min());
  EXPECT_EQ(ab_c.max(), all.max());
  EXPECT_DOUBLE_EQ(ab_c.mean(), all.mean());
}

TEST(LatencyHistogramTest, QuantileFollowsTheRepoConvention) {
  // Histogram quantiles must agree with Percentile() (Hyndman & Fan type 7)
  // up to bucket resolution: the histogram's answer may not leave the bucket
  // span that brackets the exact sample answer.
  LatencyHistogram histogram;
  std::vector<double> samples;
  ValueStream stream(11);
  for (int i = 0; i < 5000; ++i) {
    const uint64_t value = stream.NextLatency();
    histogram.Add(value);
    samples.push_back(static_cast<double>(value));
  }
  for (double q : {0.0, 1.0, 10.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
    const double exact = Percentile(samples, q);
    const size_t bucket =
        LatencyHistogram::BucketIndex(static_cast<uint64_t>(exact));
    const double lo = static_cast<double>(
        LatencyHistogram::BucketLowerBound(bucket > 0 ? bucket - 1 : 0));
    const double hi =
        static_cast<double>(LatencyHistogram::BucketUpperBound(
            std::min(bucket + 1, LatencyHistogram::kBucketCount - 1)));
    EXPECT_GE(histogram.Quantile(q), lo) << "q=" << q;
    EXPECT_LE(histogram.Quantile(q), hi) << "q=" << q;
  }
  // In the unit range every bucket holds one value, so the histogram answer
  // is within one bucket (one unit) of the rank-interpolated sample answer
  // and exact whenever the rank is integral.
  LatencyHistogram units;
  std::vector<double> unit_samples;
  for (uint64_t v = 0; v < 12; ++v) {
    units.Add(v);
    unit_samples.push_back(static_cast<double>(v));
  }
  for (double q : {0.0, 25.0, 50.0, 75.0, 100.0}) {
    EXPECT_NEAR(units.Quantile(q), Percentile(unit_samples, q), 1.0) << q;
  }
  EXPECT_DOUBLE_EQ(units.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(units.Quantile(100.0), 11.0);
}

TEST(LogHistogramTest, QuantileTracksPercentile) {
  // Satellite of the same convention fix: LogHistogram::Quantile and
  // Percentile() must agree to within one (log-spaced) bucket.
  LogHistogram histogram(0.0, 6.0, 120);
  std::vector<double> samples;
  ValueStream stream(23);
  for (int i = 0; i < 4000; ++i) {
    const double value = static_cast<double>(stream.NextLatency() % 900000 + 1);
    histogram.Add(value);
    samples.push_back(value);
  }
  const double bucket_ratio = std::pow(10.0, 6.0 / 120.0);
  for (double q : {5.0, 25.0, 50.0, 75.0, 95.0, 99.0}) {
    const double exact = Percentile(samples, q);
    const double approx = histogram.Quantile(q);
    EXPECT_GE(approx, exact / (bucket_ratio * bucket_ratio)) << "q=" << q;
    EXPECT_LE(approx, exact * bucket_ratio * bucket_ratio) << "q=" << q;
  }
}

TEST(MetricsSnapshotTest, MergeSumsCountersAndHistograms) {
  MetricsRegistry left, right;
  left.IncrementCounter("requests", 3);
  right.IncrementCounter("requests", 5);
  right.IncrementCounter("evictions", 1);
  left.SetGauge("pool", 4.0);
  right.SetGauge("pool", 7.0);
  left.ObserveLatency("latency_us", 100);
  right.ObserveLatency("latency_us", 200);

  MetricsSnapshot merged = left.Snapshot();
  merged.Merge(right.Snapshot());
  EXPECT_EQ(merged.counters.at("requests"), 8u);
  EXPECT_EQ(merged.counters.at("evictions"), 1u);
  EXPECT_EQ(merged.gauges.at("pool"), 7.0);
  EXPECT_EQ(merged.histograms.at("latency_us").count(), 2u);
  EXPECT_EQ(merged.histograms.at("latency_us").min(), 100u);
  EXPECT_EQ(merged.histograms.at("latency_us").max(), 200u);

  const std::string json = merged.ToJson();
  EXPECT_NE(json.find("\"requests\""), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
}

TEST(TraceRecorderTest, RingBufferDropsOldestAndCounts) {
  TraceRecorder recorder(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    TraceEvent event;
    event.name = "e" + std::to_string(i);
    event.category = "test";
    event.ts_us = i;
    recorder.Record(std::move(event));
  }
  EXPECT_EQ(recorder.recorded(), 20u);
  EXPECT_EQ(recorder.dropped(), 12u);
  const std::vector<TraceEvent> events = recorder.Events();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first, and only the newest 8 survive.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].name, "e" + std::to_string(12 + i));
  }
}

TEST(TraceRecorderTest, ChromeJsonRoundTrips) {
  TraceRecorder recorder;
  recorder.RegisterProcess(1, "DynamicHTML");
  recorder.RegisterThread(1, 0, "slot 0 serve");
  recorder.RegisterThread(1, 1, "slot 0 lifecycle");

  TraceEvent span;
  span.name = "serve";
  span.category = "lifecycle";
  span.phase = 'X';
  span.pid = 1;
  span.tid = 0;
  span.ts_us = 1500;
  span.dur_us = 250;
  recorder.Record(span);

  TraceEvent instant;
  instant.name = "retry";
  instant.category = "recovery";
  instant.phase = 'i';
  instant.pid = 1;
  instant.tid = 1;
  instant.ts_us = 1600;
  recorder.Record(instant);

  const std::string json = recorder.ToChromeJson();
  auto parsed = ParseChromeTrace(json);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->process_names.at(1), "DynamicHTML");
  EXPECT_EQ(parsed->thread_names.at({1, 0}), "slot 0 serve");
  EXPECT_EQ(parsed->thread_names.at({1, 1}), "slot 0 lifecycle");
  ASSERT_EQ(parsed->events.size(), 2u);
  EXPECT_EQ(parsed->events[0].name, "serve");
  EXPECT_EQ(parsed->events[0].phase, 'X');
  EXPECT_EQ(parsed->events[0].ts_us, 1500);
  EXPECT_EQ(parsed->events[0].dur_us, 250);
  EXPECT_EQ(parsed->events[1].name, "retry");
  EXPECT_EQ(parsed->events[1].phase, 'i');
  EXPECT_EQ(parsed->events[1].category, "recovery");
}

// End-to-end: an instrumented single-function run emits spans for every
// lifecycle phase and instants for the recovery machinery, and the metrics
// counters line up with the report's own accounting.
TEST(ObsIntegrationTest, InstrumentedRunEmitsAllLifecyclePhases) {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());
  auto profile = WorkloadRegistry::Default().Find("DynamicHTML");
  ASSERT_TRUE(profile.ok());

  SimOptions options;
  options.seed = 42;
  options.worker_slots = 1;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = 4;
  // Fault pressure high enough that restores fail over to older snapshots
  // (the retry/backoff instants), plus a Database outage window long enough
  // that a worker launching inside it degrades to a planless cold start.
  options.faults.get_failure_rate = 0.25;
  options.faults.put_failure_rate = 0.15;
  options.faults.corruption_rate = 0.05;
  options.faults.seed = 5;
  FaultWindow outage;
  outage.kind = FaultWindow::Kind::kOutage;
  outage.domain = FaultDomain::kDatabase;
  outage.start = TimePoint() + Duration::Seconds(1);
  outage.end = TimePoint() + Duration::Seconds(3);
  options.faults.windows.push_back(outage);

  SimFunctionSpec spec;
  spec.name = (*profile)->name;
  spec.profile = *profile;
  spec.policy = &*policy;
  spec.requests = 400;

  StandardObs obs;
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options,
                         &obs);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  std::map<std::string, size_t> by_name;
  for (const TraceEvent& event : obs.trace().Events()) {
    ++by_name[event.name];
  }
  for (const char* phase : {"provision", "restore", "cold_start",
                            "degraded_start", "serve", "checkpoint", "evict"}) {
    EXPECT_GT(by_name[phase], 0u) << phase;
  }
  EXPECT_GT(by_name["retry"] + by_name["backoff"], 0u);

  // Metrics mirror the report's own counters.
  ASSERT_FALSE(report->metrics.empty());
  const SimulationReport& flat = report->flat();
  EXPECT_EQ(report->metrics.counters.at("lifecycle.requests"),
            flat.records.size());
  EXPECT_EQ(report->metrics.counters.at("lifecycle.checkpoints"),
            flat.checkpoints);
  EXPECT_EQ(by_name["serve"], flat.records.size());
  EXPECT_EQ(by_name["checkpoint"], flat.checkpoints);
  EXPECT_EQ(report->metrics.histograms.at("lifecycle.serve_latency_us").count(),
            flat.records.size());
  // The harvested trace handle is the sink's recorder.
  EXPECT_EQ(report->trace, &obs.trace());
}

}  // namespace
}  // namespace pronghorn
