#include "src/core/orchestrator.h"

#include <gtest/gtest.h>

#include "src/checkpoint/criu_like_engine.h"
#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 3;
  config.max_checkpoint_request = 30;
  return config;
}

// Bundles the per-function stack the orchestrator needs.
struct Harness {
  explicit Harness(const OrchestrationPolicy& policy_in,
                   const char* benchmark = "DynamicHTML")
      : profile(**WorkloadRegistry::Default().Find(benchmark)),
        policy(policy_in),
        engine(1),
        state_store(db, profile.name, policy.config()),
        snapshot_store(object_store),
        orchestrator(profile, WorkloadRegistry::Default(), policy, engine,
                     snapshot_store, state_store, clock, /*seed=*/7) {}

  const WorkloadProfile& profile;
  const OrchestrationPolicy& policy;
  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  CriuLikeEngine engine;
  PolicyStateStore state_store;
  FlatSnapshotStore snapshot_store;
  Orchestrator orchestrator;

  // Serves `count` requests on one session, returning the last outcome.
  RequestOutcome ServeMany(WorkerSession& session, uint64_t count) {
    RequestOutcome last;
    for (uint64_t i = 0; i < count; ++i) {
      auto outcome = orchestrator.ServeRequest(session, {i, 1.0});
      EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
      last = *outcome;
    }
    return last;
  }
};

TEST(OrchestratorTest, FirstWorkerIsColdWithPlan) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->restored);
  EXPECT_EQ(session->startup_latency, h.profile.cold_init);
  ASSERT_TRUE(session->checkpoint_at.has_value());
  EXPECT_GE(*session->checkpoint_at, 1u);
  EXPECT_LE(*session->checkpoint_at, 4u);
  EXPECT_GT(session->startup_overhead, Duration::Zero());
}

TEST(OrchestratorTest, CheckpointFiresAtPlannedRequest) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  const uint64_t planned = *session->checkpoint_at;

  for (uint64_t i = 1; i <= 4; ++i) {
    auto outcome = h.orchestrator.ServeRequest(*session, {i, 1.0});
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->checkpoint_taken, i == planned) << "request " << i;
    if (outcome->checkpoint_taken) {
      EXPECT_GT(outcome->checkpoint_downtime, Duration::Zero());
      EXPECT_GT(outcome->checkpoint_overhead, Duration::Zero());
    }
  }

  // Snapshot landed in the pool and the object store.
  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->pool.size(), 1u);
  EXPECT_EQ(state->pool.entries()[0].metadata.request_number, planned);
  EXPECT_TRUE(h.object_store.Contains(state->pool.entries()[0].object_key));
}

TEST(OrchestratorTest, RequestsUpdateThetaInDatabase) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  h.ServeMany(*session, 3);

  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  for (uint64_t i = 1; i <= 3; ++i) {
    EXPECT_TRUE(state->theta.IsExplored(i)) << i;
  }
}

TEST(OrchestratorTest, SecondWorkerRestoresFromSnapshot) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    h.ServeMany(*session, 4);  // Guarantees the planned checkpoint fired.
  }
  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  EXPECT_TRUE(session->restored);
  EXPECT_GT(session->restored_from.value, 0u);
  // Restored maturity matches the snapshot's request number.
  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  const auto entry = state->pool.Find(session->restored_from);
  ASSERT_TRUE(entry.ok());
  EXPECT_EQ(session->process.requests_executed(), (*entry)->metadata.request_number);
  // Restore latency includes engine restore plus image transfer.
  EXPECT_GT(session->startup_latency, Duration::Millis(30));
}

TEST(OrchestratorTest, PoolEvictionDeletesObjects) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());  // C = 3.
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  // Run enough lifetimes to exceed pool capacity.
  for (int lifetime = 0; lifetime < 8; ++lifetime) {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    h.ServeMany(*session, 4);
  }
  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_LE(state->pool.size(), 3u);
  // Object store holds exactly the pooled snapshots (evictions deleted).
  const auto keys = h.object_store.ListKeys("snapshots/");
  EXPECT_EQ(keys.size(), state->pool.size());
  for (const PoolEntry& entry : state->pool.entries()) {
    EXPECT_TRUE(h.object_store.Contains(entry.object_key));
  }
}

TEST(OrchestratorTest, FallsBackToColdWhenSnapshotObjectMissing) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    h.ServeMany(*session, 4);
  }
  // Simulate a concurrent eviction deleting the image under our feet.
  for (const std::string& key : h.object_store.ListKeys("snapshots/")) {
    ASSERT_TRUE(h.object_store.Delete(key).ok());
  }
  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->restored);
  EXPECT_EQ(session->process.requests_executed(), 0u);
}

TEST(OrchestratorTest, FallsBackToColdWhenImageCorrupt) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    h.ServeMany(*session, 4);
  }
  for (const std::string& key : h.object_store.ListKeys("snapshots/")) {
    auto blob = h.object_store.Get(key);
    ASSERT_TRUE(blob.ok());
    std::vector<uint8_t> bytes = blob->bytes();
    bytes[bytes.size() / 2] ^= 0xff;
    ASSERT_TRUE(
        h.object_store.Put(key, ObjectBlob(std::move(bytes), blob->logical_size)).ok());
  }
  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->restored);  // CRC check rejected the image.
}

TEST(OrchestratorTest, AfterFirstPolicyTakesExactlyOneCheckpoint) {
  const CheckpointAfterFirstPolicy policy{TestConfig()};
  Harness h(policy);
  for (int lifetime = 0; lifetime < 6; ++lifetime) {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    h.ServeMany(*session, 4);
  }
  EXPECT_EQ(h.engine.checkpoints_taken(), 1u);
  auto state = h.state_store.Load();
  ASSERT_TRUE(state.ok());
  ASSERT_EQ(state->pool.size(), 1u);
  EXPECT_EQ(state->pool.entries()[0].metadata.request_number, 1u);
}

TEST(OrchestratorTest, ColdPolicyNeverTouchesStores) {
  const ColdStartPolicy policy{TestConfig()};
  Harness h(policy);
  for (int lifetime = 0; lifetime < 3; ++lifetime) {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    EXPECT_FALSE(session->restored);
    h.ServeMany(*session, 4);
  }
  EXPECT_EQ(h.engine.checkpoints_taken(), 0u);
  EXPECT_EQ(h.object_store.accounting().put_count, 0u);
}

TEST(OrchestratorTest, OverheadAccountingCounts) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  for (int lifetime = 0; lifetime < 3; ++lifetime) {
    auto session = h.orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    h.ServeMany(*session, 4);
  }
  const OrchestratorOverheads& overheads = h.orchestrator.overheads();
  EXPECT_EQ(overheads.worker_starts, 3u);
  EXPECT_EQ(overheads.requests_served, 12u);
  EXPECT_EQ(overheads.checkpoints_taken, h.engine.checkpoints_taken());
  EXPECT_GT(overheads.total_startup_overhead, Duration::Zero());
  EXPECT_GT(overheads.total_request_overhead, Duration::Zero());
  EXPECT_GT(overheads.total_checkpoint_overhead, Duration::Zero());
}

TEST(OrchestratorTest, CostModelDrivesOverheadAccounting) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile& profile = **WorkloadRegistry::Default().Find("Hash");

  OrchestratorCostModel costs;
  costs.db_read_latency = Duration::Millis(10);
  costs.db_write_latency = Duration::Millis(20);
  costs.decision_base_cost = Duration::Millis(5);
  costs.decision_per_snapshot_cost = Duration::Zero();

  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  CriuLikeEngine engine(8);
  PolicyStateStore state_store(db, profile.name, policy->config());
  FlatSnapshotStore snapshot_store(object_store);
  Orchestrator orchestrator(profile, WorkloadRegistry::Default(), *policy, engine,
                            snapshot_store, state_store, clock, /*seed=*/4, costs);

  auto session = orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  // Startup = read + base decision (pool empty, no per-entry cost).
  EXPECT_EQ(session->startup_overhead, Duration::Millis(15));
  auto outcome = orchestrator.ServeRequest(*session, {1, 1.0});
  ASSERT_TRUE(outcome.ok());
  // Per-request knowledge write.
  EXPECT_EQ(outcome->request_overhead, Duration::Millis(20));
  const OrchestratorOverheads& overheads = orchestrator.overheads();
  EXPECT_EQ(overheads.total_startup_overhead, Duration::Millis(15));
  EXPECT_EQ(overheads.total_request_overhead, Duration::Millis(20));
}

TEST(OrchestratorTest, FasterObjectStoreBandwidthShrinksRestoreLatency) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile& profile = **WorkloadRegistry::Default().Find("BFS");

  Duration startup_latency[2];
  int idx = 0;
  for (double mb_per_sec : {100.0, 100000.0}) {
    OrchestratorCostModel costs;
    costs.object_store_mb_per_sec = mb_per_sec;
    SimClock clock;
    InMemoryKvDatabase db;
    InMemoryObjectStore object_store;
    CriuLikeEngine engine(9);
    PolicyStateStore state_store(db, profile.name, policy->config());
    FlatSnapshotStore snapshot_store(object_store);
    Orchestrator orchestrator(profile, WorkloadRegistry::Default(), *policy, engine,
                              snapshot_store, state_store, clock, /*seed=*/4, costs);
    {
      auto session = orchestrator.StartWorker();
      ASSERT_TRUE(session.ok());
      for (uint64_t i = 1; i <= 4; ++i) {
        ASSERT_TRUE(orchestrator.ServeRequest(*session, {i, 1.0}).ok());
      }
    }
    auto session = orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    ASSERT_TRUE(session->restored);
    startup_latency[idx++] = session->startup_latency;
  }
  // A ~53 MB BFS snapshot takes ~530ms at 100 MB/s vs ~0 at 100 GB/s.
  EXPECT_GT(startup_latency[0], startup_latency[1] + Duration::Millis(300));
}

TEST(OrchestratorTest, DeploymentsOfOneWorkloadDoNotCollideInSharedStore) {
  // Two deployments (distinct Database scopes) of the same workload sharing
  // one object store: their per-scope snapshot id sequences both start at 1,
  // so keys must be scoped by deployment, not workload name.
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile& profile = **WorkloadRegistry::Default().Find("DynamicHTML");

  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  CriuLikeEngine engine(5);
  PolicyStateStore store_a(db, "fn#classA", policy->config());
  PolicyStateStore store_b(db, "fn#classB", policy->config());
  FlatSnapshotStore snapshot_store(object_store);
  Orchestrator orch_a(profile, WorkloadRegistry::Default(), *policy, engine,
                      snapshot_store, store_a, clock, 1);
  Orchestrator orch_b(profile, WorkloadRegistry::Default(), *policy, engine,
                      snapshot_store, store_b, clock, 2);

  for (Orchestrator* orch : {&orch_a, &orch_b}) {
    auto session = orch->StartWorker();
    ASSERT_TRUE(session.ok());
    for (uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(orch->ServeRequest(*session, {i, 1.0}).ok());
    }
  }
  // Both deployments checkpointed (snapshot id 1 each); both objects exist.
  EXPECT_EQ(object_store.ListKeys("snapshots/fn#classA/").size(), 1u);
  EXPECT_EQ(object_store.ListKeys("snapshots/fn#classB/").size(), 1u);

  // And both can restore their own snapshot.
  auto session_a = orch_a.StartWorker();
  auto session_b = orch_b.StartWorker();
  ASSERT_TRUE(session_a.ok());
  ASSERT_TRUE(session_b.ok());
  EXPECT_TRUE(session_a->restored);
  EXPECT_TRUE(session_b->restored);
}

TEST(OrchestratorTest, MaturityIndexingIsContiguous) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  Harness h(*policy);
  auto session = h.orchestrator.StartWorker();
  ASSERT_TRUE(session.ok());
  for (uint64_t i = 1; i <= 4; ++i) {
    auto outcome = h.orchestrator.ServeRequest(*session, {i, 1.0});
    ASSERT_TRUE(outcome.ok());
    EXPECT_EQ(outcome->request_number, i);
  }
  // Second lifetime continues from the restored snapshot's request number.
  auto session2 = h.orchestrator.StartWorker();
  ASSERT_TRUE(session2.ok());
  ASSERT_TRUE(session2->restored);
  const uint64_t start = session2->process.requests_executed();
  auto outcome = h.orchestrator.ServeRequest(*session2, {99, 1.0});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome->request_number, start + 1);
}

}  // namespace
}  // namespace pronghorn
