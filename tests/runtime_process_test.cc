#include "src/jit/runtime_process.h"

#include <gtest/gtest.h>

#include <vector>

#include "src/common/bytes.h"
#include "src/common/stats.h"
#include "src/jit/method_model.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

FunctionRequest Req(uint64_t id) { return FunctionRequest{id, 1.0}; }

// Runs `count` requests with unit input scale and returns the latencies.
std::vector<Duration> Drive(RuntimeProcess& process, uint64_t count) {
  std::vector<Duration> latencies;
  latencies.reserve(count);
  for (uint64_t i = 0; i < count; ++i) {
    latencies.push_back(process.Execute(Req(i)).latency);
  }
  return latencies;
}

double MeanMicros(std::span<const Duration> window) {
  double sum = 0;
  for (Duration d : window) {
    sum += static_cast<double>(d.ToMicros());
  }
  return sum / static_cast<double>(window.size());
}

TEST(RuntimeProcessTest, ColdStartBeginsInterpreted) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile("BFS"), 1);
  EXPECT_EQ(process.requests_executed(), 0u);
  EXPECT_EQ(process.CountAtTier(CompilationTier::kInterpreter), process.MethodCount());
  EXPECT_NEAR(process.CurrentComputeFactor(), 1.0, 1e-9);
}

TEST(RuntimeProcessTest, WarmUpReducesLatency) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile("BFS"), 2);
  const auto latencies = Drive(process, 1200);
  const double early = MeanMicros(std::span(latencies).subspan(1, 5));
  const double late = MeanMicros(std::span(latencies).subspan(1100, 100));
  EXPECT_LT(late, early * 0.5);  // BFS converged speedup is 3.5x.
}

TEST(RuntimeProcessTest, ConvergedSpeedupMatchesProfile) {
  const WorkloadProfile& profile = Profile("PageRank");
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 3);
  Drive(process, profile.convergence_requests + 300);
  // All methods optimized modulo an occasional in-flight deopt.
  EXPECT_GE(process.CountAtTier(CompilationTier::kOptimized),
            process.MethodCount() - 2);
  EXPECT_NEAR(process.CurrentComputeFactor(), 1.0 / profile.converged_speedup, 0.08);
}

TEST(RuntimeProcessTest, ConvergenceNotReachedTooEarly) {
  const WorkloadProfile& profile = Profile("HTMLRendering");  // JVM, 2500 requests.
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 4);
  Drive(process, 300);
  // At ~12% of the convergence horizon some methods must still be
  // unoptimized (Observation #2: thousands of invocations to converge).
  EXPECT_LT(process.CountAtTier(CompilationTier::kOptimized), process.MethodCount());
  EXPECT_GT(process.CurrentComputeFactor(), 1.0 / profile.converged_speedup + 0.02);
}

TEST(RuntimeProcessTest, FirstRequestCarriesLazyInit) {
  const WorkloadProfile& profile = Profile("HTMLRendering");
  RuntimeProcess a = RuntimeProcess::ColdStart(profile, 5);
  const Duration first = a.Execute(Req(1)).latency;
  const Duration second = a.Execute(Req(2)).latency;
  // HTMLRendering's lazy init is 500ms on a ~140ms body (Table 1's 650ms
  // first request).
  EXPECT_GT(first, second + Duration::Millis(300));
  EXPECT_GT(first, Duration::Millis(550));
}

TEST(RuntimeProcessTest, InputScaleScalesCompute) {
  const WorkloadProfile& profile = Profile("MST");
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 6);
  Drive(process, 50);  // Past lazy init and early compiles.
  double small_sum = 0;
  double large_sum = 0;
  for (int i = 0; i < 30; ++i) {
    small_sum +=
        static_cast<double>(process.Execute({100, 0.5}).latency.ToMicros());
    large_sum +=
        static_cast<double>(process.Execute({101, 5.0}).latency.ToMicros());
  }
  EXPECT_GT(large_sum, small_sum * 5.0);
}

TEST(RuntimeProcessTest, SameSeedSameBehavior) {
  RuntimeProcess a = RuntimeProcess::ColdStart(Profile("DFS"), 42);
  RuntimeProcess b = RuntimeProcess::ColdStart(Profile("DFS"), 42);
  for (uint64_t i = 0; i < 200; ++i) {
    EXPECT_EQ(a.Execute(Req(i)).latency, b.Execute(Req(i)).latency);
  }
  EXPECT_TRUE(a.StateEquals(b));
}

TEST(RuntimeProcessTest, DifferentSeedsDiverge) {
  RuntimeProcess a = RuntimeProcess::ColdStart(Profile("DFS"), 1);
  RuntimeProcess b = RuntimeProcess::ColdStart(Profile("DFS"), 2);
  Drive(a, 50);
  Drive(b, 50);
  EXPECT_FALSE(a.StateEquals(b));
}

TEST(RuntimeProcessTest, SerializationRoundTripPreservesState) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile("DynamicHTML"), 7);
  Drive(process, 137);

  ByteWriter writer;
  process.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = RuntimeProcess::Deserialize(reader, WorkloadRegistry::Default());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_TRUE(process.StateEquals(*restored));
  EXPECT_EQ(restored->requests_executed(), 137u);
}

TEST(RuntimeProcessTest, RestoredProcessContinuesIdentically) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile("Hash"), 8);
  Drive(process, 60);

  ByteWriter writer;
  process.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = RuntimeProcess::Deserialize(reader, WorkloadRegistry::Default());
  ASSERT_TRUE(restored.ok());

  // Without reseeding, a restored process replays the exact same future.
  for (uint64_t i = 0; i < 50; ++i) {
    EXPECT_EQ(process.Execute(Req(i)).latency, restored->Execute(Req(i)).latency);
  }
}

TEST(RuntimeProcessTest, ReseedForRestoreDiverges) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile("Hash"), 9);
  Drive(process, 60);

  ByteWriter writer;
  process.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = RuntimeProcess::Deserialize(reader, WorkloadRegistry::Default());
  ASSERT_TRUE(restored.ok());
  restored->ReseedForRestore(12345);

  bool any_difference = false;
  for (uint64_t i = 0; i < 100; ++i) {
    if (process.Execute(Req(i)).latency != restored->Execute(Req(i)).latency) {
      any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
  // Maturity still advances in lockstep regardless of noise.
  EXPECT_EQ(process.requests_executed(), restored->requests_executed());
}

TEST(RuntimeProcessTest, DeserializeRejectsUnknownWorkload) {
  WorkloadProfile custom;
  custom.name = "Ghost";
  custom.converged_speedup = 2.0;
  custom.hot_method_count = 4;
  custom.convergence_requests = 50;
  custom.compute_base = Duration::Millis(1);
  auto registry = WorkloadRegistry::Create({custom});
  ASSERT_TRUE(registry.ok());

  RuntimeProcess process = RuntimeProcess::ColdStart(*registry->Find("Ghost").value(), 1);
  ByteWriter writer;
  process.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = RuntimeProcess::Deserialize(reader, WorkloadRegistry::Default());
  EXPECT_EQ(restored.status().code(), StatusCode::kNotFound);
}

TEST(RuntimeProcessTest, DeserializeRejectsTruncation) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile("MST"), 10);
  Drive(process, 10);
  ByteWriter writer;
  process.Serialize(writer);
  const auto& bytes = writer.data();
  // Every strict prefix must fail cleanly.
  for (size_t keep : {size_t{0}, size_t{3}, bytes.size() / 2, bytes.size() - 1}) {
    ByteReader reader(std::span<const uint8_t>(bytes.data(), keep));
    EXPECT_FALSE(RuntimeProcess::Deserialize(reader, WorkloadRegistry::Default()).ok())
        << "prefix " << keep;
  }
}

TEST(RuntimeProcessTest, MemoryFootprintGrowsWithWarmup) {
  const WorkloadProfile& profile = Profile("BFS");
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 11);
  const double cold_mb = process.MemoryFootprintMb();
  Drive(process, profile.convergence_requests + 200);
  const double warm_mb = process.MemoryFootprintMb();
  EXPECT_GT(warm_mb, cold_mb);
  // Calibration: the warm footprint approximates Table 4's snapshot size.
  EXPECT_NEAR(warm_mb, profile.snapshot_mb, profile.snapshot_mb * 0.1);
}

TEST(RuntimeProcessTest, OversizedMethodsNeverOptimize) {
  // §2: method-size thresholds prevent some methods from ever being
  // optimized. With ~3% oversized probability and 20 methods per JVM
  // workload, a long enough scan of seeds must find capped methods, and a
  // fully-converged process keeps them at the baseline tier.
  const WorkloadProfile& profile = Profile("HTMLRendering");
  bool found_capped = false;
  for (uint64_t seed = 0; seed < 40 && !found_capped; ++seed) {
    RuntimeProcess process = RuntimeProcess::ColdStart(profile, seed);
    Drive(process, profile.convergence_requests + 500);
    const size_t baseline = process.CountAtTier(CompilationTier::kBaseline);
    if (baseline > 0) {
      found_capped = true;
      // Capped methods are stable: more requests never promote them.
      Drive(process, 500);
      EXPECT_GE(process.CountAtTier(CompilationTier::kBaseline), baseline);
    }
  }
  EXPECT_TRUE(found_capped);
}

TEST(RuntimeProcessTest, GcPausesProduceTailSpikes) {
  const WorkloadProfile& profile = Profile("Hash");  // JVM: 1.2% x ~15ms.
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 13);
  Drive(process, 200);  // Warm up past the steep region.
  std::vector<double> latencies;
  for (uint64_t i = 0; i < 4000; ++i) {
    latencies.push_back(
        static_cast<double>(process.Execute({i, 1.0}).latency.ToMicros()));
  }
  const double p50 = Percentile(latencies, 50.0);
  const double p999 = Percentile(latencies, 99.9);
  // The tail carries GC spikes well above the median.
  EXPECT_GT(p999, p50 + 8000.0);
}

TEST(RuntimeProcessTest, DeoptsOccurOverLongRuns) {
  const WorkloadProfile& profile = Profile("PageRank");
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 12);
  Drive(process, 4000);
  EXPECT_GT(process.total_deopts(), 0u);  // Observation #3: non-monotonicity.
}

TEST(MethodModelTest, WeightsAreNormalized) {
  Rng rng(1);
  const auto methods = BuildMethodTable(Profile("BFS"), rng);
  double total = 0;
  for (const MethodState& m : methods) {
    EXPECT_GT(m.weight, 0.0);
    total += m.weight;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(MethodModelTest, ThresholdsAreOrdered) {
  Rng rng(2);
  for (const MethodState& m : BuildMethodTable(Profile("HTMLRendering"), rng)) {
    EXPECT_GE(m.baseline_threshold, 1u);
    EXPECT_GT(m.optimize_threshold, m.baseline_threshold);
  }
}

TEST(MethodModelTest, SlowestMethodPinnedNearConvergence) {
  const WorkloadProfile& profile = Profile("DynamicHTML");
  Rng rng(3);
  const auto methods = BuildMethodTable(profile, rng);
  uint64_t max_threshold = 0;
  for (const MethodState& m : methods) {
    max_threshold = std::max(max_threshold, m.optimize_threshold);
  }
  EXPECT_GE(max_threshold, static_cast<uint64_t>(profile.convergence_requests * 0.85));
  EXPECT_LE(max_threshold, profile.convergence_requests);
}

TEST(MethodModelTest, SerializationRoundTrip) {
  Rng rng(4);
  const auto methods = BuildMethodTable(Profile("MST"), rng);
  for (const MethodState& m : methods) {
    ByteWriter writer;
    m.Serialize(writer);
    ByteReader reader(writer.data());
    auto restored = MethodState::Deserialize(reader);
    ASSERT_TRUE(restored.ok());
    EXPECT_EQ(*restored, m);
  }
}

TEST(MethodModelTest, DeserializeRejectsBadTier) {
  MethodState m;
  m.weight = 0.5;
  ByteWriter writer;
  m.Serialize(writer);
  auto bytes = writer.data();
  bytes[8] = 99;  // Tier byte follows the 8-byte weight.
  ByteReader reader(bytes);
  EXPECT_EQ(MethodState::Deserialize(reader).status().code(), StatusCode::kDataLoss);
}

// Property sweep: warm-up monotonicity-in-the-large holds for every
// benchmark (median of late window below median of early window for
// compute-bound profiles).
class WarmupSweep : public ::testing::TestWithParam<const char*> {};

TEST_P(WarmupSweep, LateWindowFasterThanEarly) {
  const WorkloadProfile& profile = Profile(GetParam());
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 77);
  const double cold_factor = process.CurrentComputeFactor();
  const auto latencies = Drive(process, profile.convergence_requests + 100);
  // The JIT state always improves (deterministic check, noise-free).
  EXPECT_LT(process.CurrentComputeFactor(), cold_factor);
  EXPECT_NEAR(process.CurrentComputeFactor(), 1.0 / profile.converged_speedup, 0.1);
  if (!profile.io_bound) {
    // For compute-bound profiles the improvement dominates the noise.
    const double early = MeanMicros(std::span(latencies).subspan(1, 10));
    const double late =
        MeanMicros(std::span(latencies).subspan(latencies.size() - 50, 50));
    EXPECT_LT(late, early);
  }
}

INSTANTIATE_TEST_SUITE_P(AllBenchmarks, WarmupSweep,
                         ::testing::Values("HTMLRendering", "MatrixMult", "Hash",
                                           "WordCount", "BFS", "DFS", "MST",
                                           "DynamicHTML", "PageRank", "Uploader",
                                           "Thumbnailer", "Video", "Compression",
                                           "JSONParse"));

}  // namespace
}  // namespace pronghorn
