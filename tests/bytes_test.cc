#include "src/common/bytes.h"

#include <gtest/gtest.h>

#include <limits>

#include "src/common/rng.h"

namespace pronghorn {
namespace {

TEST(ByteWriterTest, FixedWidthLittleEndian) {
  ByteWriter writer;
  writer.WriteUint32(0x04030201u);
  const auto& data = writer.data();
  ASSERT_EQ(data.size(), 4u);
  EXPECT_EQ(data[0], 0x01);
  EXPECT_EQ(data[1], 0x02);
  EXPECT_EQ(data[2], 0x03);
  EXPECT_EQ(data[3], 0x04);
}

TEST(ByteRoundTripTest, AllScalarTypes) {
  ByteWriter writer;
  writer.WriteUint8(0xab);
  writer.WriteUint32(0xdeadbeef);
  writer.WriteUint64(0x0123456789abcdefULL);
  writer.WriteInt64(-42);
  writer.WriteDouble(3.14159);
  writer.WriteVarint(300);

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.ReadUint8().value(), 0xab);
  EXPECT_EQ(reader.ReadUint32().value(), 0xdeadbeefu);
  EXPECT_EQ(reader.ReadUint64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(reader.ReadInt64().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), 3.14159);
  EXPECT_EQ(reader.ReadVarint().value(), 300u);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(ByteRoundTripTest, DoubleSpecialValues) {
  ByteWriter writer;
  writer.WriteDouble(0.0);
  writer.WriteDouble(-0.0);
  writer.WriteDouble(std::numeric_limits<double>::infinity());
  writer.WriteDouble(std::numeric_limits<double>::denorm_min());

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.ReadDouble().value(), 0.0);
  EXPECT_EQ(reader.ReadDouble().value(), -0.0);
  EXPECT_EQ(reader.ReadDouble().value(), std::numeric_limits<double>::infinity());
  EXPECT_EQ(reader.ReadDouble().value(), std::numeric_limits<double>::denorm_min());
}

TEST(ByteRoundTripTest, StringsAndBytes) {
  ByteWriter writer;
  writer.WriteString("hello");
  writer.WriteString("");
  const std::vector<uint8_t> blob = {0x00, 0xff, 0x7f};
  writer.WriteBytes(blob);

  ByteReader reader(writer.data());
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_EQ(reader.ReadString().value(), "");
  EXPECT_EQ(reader.ReadBytes().value(), blob);
  EXPECT_TRUE(reader.AtEnd());
}

TEST(VarintTest, BoundaryValues) {
  const uint64_t cases[] = {0,     1,     127,        128,
                            16383, 16384, 0xffffffff, std::numeric_limits<uint64_t>::max()};
  for (uint64_t value : cases) {
    ByteWriter writer;
    writer.WriteVarint(value);
    ByteReader reader(writer.data());
    auto read = reader.ReadVarint();
    ASSERT_TRUE(read.ok()) << value;
    EXPECT_EQ(*read, value);
    EXPECT_TRUE(reader.AtEnd());
  }
}

TEST(VarintTest, SingleByteForSmallValues) {
  ByteWriter writer;
  writer.WriteVarint(127);
  EXPECT_EQ(writer.size(), 1u);
  writer.WriteVarint(128);
  EXPECT_EQ(writer.size(), 3u);  // 1 + 2.
}

TEST(VarintTest, OverlongRejected) {
  // Eleven continuation bytes overflow 64 bits.
  std::vector<uint8_t> bad(11, 0x80);
  ByteReader reader(bad);
  EXPECT_EQ(reader.ReadVarint().status().code(), StatusCode::kDataLoss);
}

TEST(VarintTest, OverflowHighBitsRejected) {
  // 10 bytes whose last byte pushes past 2^64.
  std::vector<uint8_t> bad = {0xff, 0xff, 0xff, 0xff, 0xff,
                              0xff, 0xff, 0xff, 0xff, 0x02};
  ByteReader reader(bad);
  EXPECT_EQ(reader.ReadVarint().status().code(), StatusCode::kDataLoss);
}

TEST(ByteReaderTest, TruncationErrorsNotUb) {
  ByteWriter writer;
  writer.WriteUint64(12345);
  // Progressive truncation of an 8-byte value.
  for (size_t keep = 0; keep < 8; ++keep) {
    ByteReader reader(std::span<const uint8_t>(writer.data().data(), keep));
    EXPECT_EQ(reader.ReadUint64().status().code(), StatusCode::kOutOfRange);
  }
}

TEST(ByteReaderTest, TruncatedStringLength) {
  ByteWriter writer;
  writer.WriteVarint(100);  // Claims 100 bytes follow; none do.
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.ReadString().status().code(), StatusCode::kOutOfRange);
}

TEST(ByteReaderTest, EmptyBuffer) {
  ByteReader reader(std::span<const uint8_t>{});
  EXPECT_TRUE(reader.AtEnd());
  EXPECT_EQ(reader.remaining(), 0u);
  EXPECT_FALSE(reader.ReadUint8().ok());
}

TEST(ByteReaderTest, RemainingTracksProgress) {
  ByteWriter writer;
  writer.WriteUint32(1);
  writer.WriteUint32(2);
  ByteReader reader(writer.data());
  EXPECT_EQ(reader.remaining(), 8u);
  ASSERT_TRUE(reader.ReadUint32().ok());
  EXPECT_EQ(reader.remaining(), 4u);
  ASSERT_TRUE(reader.ReadUint32().ok());
  EXPECT_TRUE(reader.AtEnd());
}

// Property: random sequences of writes always read back identically.
class BytesFuzzRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BytesFuzzRoundTrip, RandomSequences) {
  Rng rng(GetParam());
  ByteWriter writer;
  struct Op {
    int kind;
    uint64_t u;
    double d;
    std::string s;
  };
  std::vector<Op> ops;
  const int op_count = 50;
  for (int i = 0; i < op_count; ++i) {
    Op op;
    op.kind = static_cast<int>(rng.UniformUint64(5));
    op.u = rng.NextUint64();
    op.d = rng.Gaussian(0, 1e6);
    const size_t len = rng.UniformUint64(40);
    for (size_t j = 0; j < len; ++j) {
      op.s.push_back(static_cast<char>('a' + rng.UniformUint64(26)));
    }
    switch (op.kind) {
      case 0:
        writer.WriteUint32(static_cast<uint32_t>(op.u));
        break;
      case 1:
        writer.WriteUint64(op.u);
        break;
      case 2:
        writer.WriteDouble(op.d);
        break;
      case 3:
        writer.WriteVarint(op.u);
        break;
      case 4:
        writer.WriteString(op.s);
        break;
    }
    ops.push_back(std::move(op));
  }

  ByteReader reader(writer.data());
  for (const Op& op : ops) {
    switch (op.kind) {
      case 0:
        EXPECT_EQ(reader.ReadUint32().value(), static_cast<uint32_t>(op.u));
        break;
      case 1:
        EXPECT_EQ(reader.ReadUint64().value(), op.u);
        break;
      case 2:
        EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), op.d);
        break;
      case 3:
        EXPECT_EQ(reader.ReadVarint().value(), op.u);
        break;
      case 4:
        EXPECT_EQ(reader.ReadString().value(), op.s);
        break;
    }
  }
  EXPECT_TRUE(reader.AtEnd());
}

INSTANTIATE_TEST_SUITE_P(Seeds, BytesFuzzRoundTrip,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace pronghorn
