#include "src/core/baseline_policies.h"

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

PoolEntry Entry(uint64_t id, uint64_t request_number) {
  PoolEntry entry;
  entry.metadata.id = SnapshotId{id};
  entry.metadata.function = "f";
  entry.metadata.request_number = request_number;
  entry.object_key = "snapshots/f/" + std::to_string(id);
  return entry;
}

TEST(ColdStartPolicyTest, NeverRestoresNeverCheckpoints) {
  const ColdStartPolicy policy;
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(1, 5)).ok());  // Even with snapshots around.
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    EXPECT_FALSE(decision.restore_from.has_value());
    EXPECT_FALSE(decision.checkpoint_at_request.has_value());
  }
  EXPECT_EQ(policy.name(), "cold-start");
}

TEST(ColdStartPolicyTest, IgnoresLatencyKnowledge) {
  const ColdStartPolicy policy;
  PolicyState state(policy.config());
  policy.OnRequestComplete(state, 3, Duration::Millis(100));
  EXPECT_EQ(state.theta.ExploredCount(), 0u);
}

TEST(ColdStartPolicyTest, NeverEvicts) {
  const ColdStartPolicy policy;
  PolicyState state(policy.config());
  Rng rng(2);
  EXPECT_TRUE(policy.OnSnapshotAdded(state, rng).empty());
}

TEST(CheckpointAfterFirstPolicyTest, FirstWorkerColdAndCheckpointsAtOne) {
  const CheckpointAfterFirstPolicy policy{PolicyConfig{}};
  PolicyState state(policy.config());
  Rng rng(3);
  const StartDecision decision = policy.OnWorkerStart(state, rng);
  EXPECT_FALSE(decision.restore_from.has_value());
  ASSERT_TRUE(decision.checkpoint_at_request.has_value());
  EXPECT_EQ(*decision.checkpoint_at_request, 1u);
  EXPECT_EQ(policy.name(), "checkpoint-after-1st");
}

TEST(CheckpointAfterFirstPolicyTest, AlwaysRestoresTheOneSnapshot) {
  const CheckpointAfterFirstPolicy policy{PolicyConfig{}};
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(9, 1)).ok());
  Rng rng(4);
  for (int i = 0; i < 100; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    ASSERT_TRUE(decision.restore_from.has_value());
    EXPECT_EQ(decision.restore_from->value, 9u);
    // Never checkpoints again — the defining limitation the paper attacks.
    EXPECT_FALSE(decision.checkpoint_at_request.has_value());
  }
}

TEST(CheckpointAfterFirstPolicyTest, RecordsLatenciesButNeverEvicts) {
  const CheckpointAfterFirstPolicy policy{PolicyConfig{}};
  PolicyState state(policy.config());
  policy.OnRequestComplete(state, 2, Duration::Millis(80));
  EXPECT_DOUBLE_EQ(state.theta.At(2), 0.080);
  Rng rng(5);
  EXPECT_TRUE(policy.OnSnapshotAdded(state, rng).empty());
}

}  // namespace
}  // namespace pronghorn
