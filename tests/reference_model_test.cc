// Differential tests: drive random operation sequences against a component
// and a trivially-correct reference model in lockstep, asserting equivalent
// observable behavior. Catches whole classes of state-machine bugs that
// example-based tests miss.

#include <gtest/gtest.h>

#include <map>
#include <optional>

#include "src/common/rng.h"
#include "src/core/weight_vector.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"

namespace pronghorn {
namespace {

// --- WeightVector vs. a plain map ------------------------------------------

class WeightVectorDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(WeightVectorDifferential, MatchesReferenceMap) {
  Rng rng(GetParam());
  constexpr uint32_t kLength = 64;
  constexpr double kAlpha = 0.3;
  WeightVector vector(kLength);
  std::map<uint64_t, double> reference;

  for (int op = 0; op < 2000; ++op) {
    const uint64_t index = rng.UniformUint64(kLength + 8);  // Some out of range.
    const double latency = rng.UniformDouble(-0.1, 2.0);    // Some non-positive.
    vector.Update(index, latency, kAlpha);
    if (index < kLength && latency > 0.0) {
      auto it = reference.find(index);
      if (it == reference.end()) {
        reference[index] = latency;
      } else {
        it->second = kAlpha * latency + (1.0 - kAlpha) * it->second;
      }
    }
    if (op % 50 == 0) {
      for (uint64_t i = 0; i < kLength; ++i) {
        const auto it = reference.find(i);
        EXPECT_DOUBLE_EQ(vector.At(i), it == reference.end() ? 0.0 : it->second)
            << "index " << i << " after op " << op;
      }
      EXPECT_EQ(vector.ExploredCount(), reference.size());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, WeightVectorDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --- KvDatabase vs. a map of versioned values -------------------------------

class KvDatabaseDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvDatabaseDifferential, MatchesReferenceStore) {
  Rng rng(GetParam() + 100);
  InMemoryKvDatabase db;
  struct RefEntry {
    std::vector<uint8_t> value;
    uint64_t version = 0;
  };
  std::map<std::string, RefEntry> reference;

  const std::vector<std::string> keys = {"a", "b", "c", "d"};
  for (int op = 0; op < 3000; ++op) {
    const std::string& key = keys[rng.UniformUint64(keys.size())];
    const uint64_t kind = rng.UniformUint64(5);
    std::vector<uint8_t> value = {static_cast<uint8_t>(rng.UniformUint64(256))};
    switch (kind) {
      case 0: {  // Put.
        ASSERT_TRUE(db.Put(key, value).ok());
        auto& entry = reference[key];
        entry.value = value;
        entry.version += 1;
        break;
      }
      case 1: {  // Get.
        auto got = db.Get(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(got.status().code(), StatusCode::kNotFound);
        } else {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(*got, it->second.value);
        }
        break;
      }
      case 2: {  // CAS with a randomly right-or-wrong expected version.
        const auto it = reference.find(key);
        const uint64_t current = it == reference.end() ? 0 : it->second.version;
        const uint64_t expected =
            rng.Bernoulli(0.5) ? current : current + 1 + rng.UniformUint64(3);
        const Status status = db.CompareAndSwap(key, expected, value);
        if (expected == current) {
          ASSERT_TRUE(status.ok());
          auto& entry = reference[key];
          entry.value = value;
          entry.version += 1;
        } else {
          EXPECT_EQ(status.code(), StatusCode::kAborted);
        }
        break;
      }
      case 3: {  // Delete.
        const Status status = db.Delete(key);
        if (reference.erase(key) > 0) {
          EXPECT_TRUE(status.ok());
        } else {
          EXPECT_EQ(status.code(), StatusCode::kNotFound);
        }
        break;
      }
      case 4: {  // GetVersioned.
        auto got = db.GetVersioned(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_FALSE(got.ok());
        } else {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got->version, it->second.version);
          EXPECT_EQ(got->value, it->second.value);
        }
        break;
      }
    }
  }
  EXPECT_EQ(db.ListKeys("").size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvDatabaseDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u));

// --- ObjectStore vs. a map with accounting ----------------------------------

class ObjectStoreDifferential : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ObjectStoreDifferential, MatchesReferenceStoreAndAccounting) {
  Rng rng(GetParam() + 500);
  InMemoryObjectStore store;
  std::map<std::string, uint64_t> reference;  // key -> logical size.
  uint64_t expected_stored = 0;
  uint64_t expected_peak = 0;
  uint64_t expected_uploaded = 0;
  uint64_t expected_downloaded = 0;

  const std::vector<std::string> keys = {"s/1", "s/2", "s/3"};
  for (int op = 0; op < 3000; ++op) {
    const std::string& key = keys[rng.UniformUint64(keys.size())];
    switch (rng.UniformUint64(3)) {
      case 0: {  // Put.
        ObjectBlob blob({1, 2, 3}, 1 + rng.UniformUint64(1000));
        const uint64_t logical = blob.logical_size;
        ASSERT_TRUE(store.Put(key, std::move(blob)).ok());
        auto it = reference.find(key);
        expected_stored -= it == reference.end() ? 0 : it->second;
        expected_stored += logical;
        expected_peak = std::max(expected_peak, expected_stored);
        expected_uploaded += logical;
        reference[key] = logical;
        break;
      }
      case 1: {  // Get.
        auto got = store.Get(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_FALSE(got.ok());
        } else {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got->logical_size, it->second);
          expected_downloaded += it->second;
        }
        break;
      }
      case 2: {  // Delete.
        const Status status = store.Delete(key);
        const auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_EQ(status.code(), StatusCode::kNotFound);
        } else {
          EXPECT_TRUE(status.ok());
          expected_stored -= it->second;
          reference.erase(it);
        }
        break;
      }
    }
  }

  const StoreAccounting acc = store.accounting();
  EXPECT_EQ(acc.logical_bytes_stored, expected_stored);
  EXPECT_EQ(acc.peak_logical_bytes, expected_peak);
  EXPECT_EQ(acc.network_bytes_uploaded, expected_uploaded);
  EXPECT_EQ(acc.network_bytes_downloaded, expected_downloaded);
  EXPECT_EQ(store.ListKeys("").size(), reference.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ObjectStoreDifferential,
                         ::testing::Values(1u, 2u, 3u, 4u));

}  // namespace
}  // namespace pronghorn
