// Service-mode equivalence: running the orchestrator behind the live service
// (sharded queues, group-commit batching) is a transport change, not a
// behavior change. For a fixed seed, every topology must produce a report
// digest bit-identical to the in-process run — across thread counts, shard
// counts, batch sizes, and with chaos fault injection enabled. This is the
// acceptance bar for `--service` mode.

#include <gtest/gtest.h>

#include <vector>

#include "src/core/request_centric_policy.h"
#include "src/platform/simulate.h"

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 3;
  config.max_checkpoint_request = 30;
  return config;
}

struct ServiceVariant {
  bool enabled = false;
  uint32_t shards = 1;
  uint32_t max_batch = 1;
};

// The sweep grid: in-process baseline, a single-shard unbatched service (the
// degenerate configuration), and a sharded batched one (the default-ish
// configuration). Equivalence across all three rules out both the queueing
// layer and the group-commit layer as sources of divergence.
const ServiceVariant kVariants[] = {
    {.enabled = false},
    {.enabled = true, .shards = 1, .max_batch = 1},
    {.enabled = true, .shards = 4, .max_batch = 16},
};

std::vector<SimFunctionSpec> TwoFunctionSpecs(const RequestCentricPolicy& policy,
                                              const WorkloadRegistry& registry,
                                              uint64_t requests) {
  const auto dynamic_html = registry.Find("DynamicHTML");
  const auto bfs = registry.Find("BFS");
  EXPECT_TRUE(dynamic_html.ok());
  EXPECT_TRUE(bfs.ok());
  std::vector<SimFunctionSpec> specs;
  for (const WorkloadProfile* profile : {*dynamic_html, *bfs}) {
    SimFunctionSpec spec;
    spec.name = profile->name;
    spec.profile = profile;
    spec.policy = &policy;
    spec.requests = requests;
    specs.push_back(spec);
  }
  return specs;
}

void ApplyChaos(SimOptions& options) {
  options.faults.get_failure_rate = 0.10;
  options.faults.put_failure_rate = 0.10;
  options.faults.delete_failure_rate = 0.10;
  options.faults.metadata_failure_rate = 0.10;
  options.faults.corruption_rate = 0.02;
  options.faults.seed = 42;
}

void ApplyVariant(SimOptions& options, const ServiceVariant& variant) {
  options.service.enabled = variant.enabled;
  options.service.shards = variant.shards;
  options.service.max_batch = variant.max_batch;
}

TEST(ServiceEquivalenceTest, FleetDigestIdenticalServiceOnOffUnderChaos) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const auto& registry = WorkloadRegistry::Default();
  const std::vector<SimFunctionSpec> specs =
      TwoFunctionSpecs(*policy, registry, /*requests=*/150);

  std::vector<uint32_t> digests;
  for (const uint32_t threads : {1u, 2u, 8u}) {
    for (const ServiceVariant& variant : kVariants) {
      SimOptions options;
      options.seed = 7;
      options.threads = threads;
      options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
      options.eviction.k = 4;
      ApplyChaos(options);
      ApplyVariant(options, variant);
      auto report = Simulate(registry, SimTopology::kFleet, specs, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      // The chaos plan actually fired; equivalence over a fault-free run
      // would prove much less.
      EXPECT_GT(report->faults.store_faults + report->faults.db_faults, 0u);
      digests.push_back(report->Digest());
    }
  }
  for (const uint32_t digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

TEST(ServiceEquivalenceTest, FleetDigestIdenticalServiceOnOffFaultFree) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const auto& registry = WorkloadRegistry::Default();
  const std::vector<SimFunctionSpec> specs =
      TwoFunctionSpecs(*policy, registry, /*requests=*/120);

  std::vector<uint32_t> digests;
  for (const uint32_t threads : {1u, 8u}) {
    for (const ServiceVariant& variant : kVariants) {
      SimOptions options;
      options.seed = 11;
      options.threads = threads;
      options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
      options.eviction.k = 4;
      ApplyVariant(options, variant);
      auto report = Simulate(registry, SimTopology::kFleet, specs, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      digests.push_back(report->Digest());
    }
  }
  for (const uint32_t digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

TEST(ServiceEquivalenceTest, PlatformDigestIdenticalServiceOnOff) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const auto& registry = WorkloadRegistry::Default();
  const std::vector<SimFunctionSpec> specs =
      TwoFunctionSpecs(*policy, registry, /*requests=*/100);

  std::vector<uint32_t> digests;
  for (const ServiceVariant& variant : kVariants) {
    SimOptions options;
    options.seed = 21;
    ApplyChaos(options);
    ApplyVariant(options, variant);
    auto report = Simulate(registry, SimTopology::kPlatform, specs, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    digests.push_back(report->Digest());
  }
  for (const uint32_t digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

TEST(ServiceEquivalenceTest, SingleDigestIdenticalServiceOnOff) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const auto& registry = WorkloadRegistry::Default();
  const auto dynamic_html = registry.Find("DynamicHTML");
  ASSERT_TRUE(dynamic_html.ok());
  SimFunctionSpec spec;
  spec.name = (*dynamic_html)->name;
  spec.profile = *dynamic_html;
  spec.policy = &*policy;
  spec.requests = 200;
  const std::vector<SimFunctionSpec> specs = {spec};

  std::vector<uint32_t> digests;
  for (const ServiceVariant& variant : kVariants) {
    SimOptions options;
    options.seed = 3;
    ApplyVariant(options, variant);
    auto report = Simulate(registry, SimTopology::kSingle, specs, options);
    ASSERT_TRUE(report.ok()) << report.status().ToString();
    digests.push_back(report->Digest());
  }
  for (const uint32_t digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

}  // namespace
}  // namespace pronghorn
