// Cross-driver equivalence: the four drivers are thin configurations of one
// shared kernel (SimCore + SimEnvironment), so the degenerate configurations
// must coincide exactly. A single-slot cluster replays the same seed to
// bit-identical records as a function simulation, and a one-shard fleet
// hashes to the same digest as a one-function platform.

#include <gtest/gtest.h>

#include "src/core/request_centric_policy.h"
#include "src/obs/sink.h"
#include "src/platform/cluster_simulation.h"
#include "src/platform/fleet_simulation.h"
#include "src/platform/function_simulation.h"
#include "src/platform/platform_simulation.h"
#include "src/platform/report_io.h"
#include "src/platform/simulate.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  return config;
}

void ExpectIdenticalRecords(const SimulationReport& function_report,
                            const ClusterReport& cluster_report) {
  ASSERT_EQ(function_report.records.size(), cluster_report.records.size());
  for (size_t i = 0; i < function_report.records.size(); ++i) {
    const RequestRecord& lhs = function_report.records[i];
    const RequestRecord& rhs = cluster_report.records[i];
    EXPECT_EQ(lhs.global_index, rhs.global_index) << i;
    EXPECT_EQ(lhs.request_number, rhs.request_number) << i;
    EXPECT_EQ(lhs.latency.ToMicros(), rhs.latency.ToMicros()) << i;
    EXPECT_EQ(lhs.first_of_lifetime, rhs.first_of_lifetime) << i;
    EXPECT_EQ(lhs.cold_start, rhs.cold_start) << i;
    EXPECT_EQ(lhs.checkpoint_after, rhs.checkpoint_after) << i;
  }
  EXPECT_EQ(ClusterReportCrc32(function_report), ClusterReportCrc32(cluster_report));
}

// Runs both single-deployment drivers with identical options and asserts the
// full flattened reports hash identically.
void CheckFunctionVsSingleSlotCluster(EngineKind engine_kind,
                                      const FaultPlan& faults) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());

  SimOptions function_options;
  function_options.seed = 11;
  function_options.engine_kind = engine_kind;
  function_options.faults = faults;
  FunctionSimulation function(Profile("BFS"), WorkloadRegistry::Default(), *policy,
                              **eviction, function_options);
  auto function_report = function.RunClosedLoop(200);
  ASSERT_TRUE(function_report.ok()) << function_report.status().ToString();

  SimOptions cluster_options;
  cluster_options.worker_slots = 1;
  cluster_options.exploring_slots = 1;
  cluster_options.seed = 11;
  cluster_options.engine_kind = engine_kind;
  cluster_options.faults = faults;
  ClusterSimulation cluster(Profile("BFS"), WorkloadRegistry::Default(), *policy,
                            **eviction, cluster_options);
  auto cluster_report = cluster.RunClosedLoop(200);
  ASSERT_TRUE(cluster_report.ok()) << cluster_report.status().ToString();

  ExpectIdenticalRecords(*function_report, *cluster_report);
}

TEST(DriverEquivalenceTest, FunctionMatchesSingleSlotCluster) {
  CheckFunctionVsSingleSlotCluster(EngineKind::kCriuLike, FaultPlan{});
}

TEST(DriverEquivalenceTest, FunctionMatchesSingleSlotClusterWithDeltaEngine) {
  CheckFunctionVsSingleSlotCluster(EngineKind::kDelta, FaultPlan{});
}

TEST(DriverEquivalenceTest, FunctionMatchesSingleSlotClusterUnderFaults) {
  FaultPlan faults;
  faults.get_failure_rate = 0.08;
  faults.put_failure_rate = 0.08;
  faults.corruption_rate = 0.02;
  faults.seed = 99;
  CheckFunctionVsSingleSlotCluster(EngineKind::kCriuLike, faults);
}

TEST(DriverEquivalenceTest, EngineKindChangesTheOutcome) {
  // Sanity check that the engine selection actually reaches the kernel: the
  // two engines must not replay to the same bytes.
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());

  uint32_t digests[2] = {0, 0};
  for (const EngineKind kind : {EngineKind::kCriuLike, EngineKind::kDelta}) {
    SimOptions options;
    options.seed = 12;
    options.engine_kind = kind;
    FunctionSimulation simulation(Profile("MST"), WorkloadRegistry::Default(),
                                  *policy, **eviction, options);
    auto report = simulation.RunClosedLoop(150);
    ASSERT_TRUE(report.ok());
    digests[kind == EngineKind::kDelta ? 1 : 0] = ClusterReportCrc32(*report);
  }
  EXPECT_NE(digests[0], digests[1]);
}

TEST(DriverEquivalenceTest, OneShardFleetMatchesOneFunctionPlatform) {
  // Both sides derive the deployment's sub-seed from (seed, name), so a
  // single-deployment fleet and a single-deployment platform walk identical
  // event sequences and their digests share one canonical layout.
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile& profile = Profile("DynamicHTML");
  constexpr uint64_t kSeed = 21;
  constexpr uint64_t kRequests = 300;

  SimOptions fleet_options;
  fleet_options.seed = kSeed;
  fleet_options.threads = 1;
  fleet_options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  fleet_options.eviction.k = 4;
  FleetSimulation fleet(WorkloadRegistry::Default(), fleet_options);
  FleetFunctionSpec spec;
  spec.name = profile.name;
  spec.profile = &profile;
  spec.policy = &*policy;
  spec.requests = kRequests;
  spec.worker_slots = 1;
  spec.exploring_slots = 1;
  ASSERT_TRUE(fleet.AddFunction(spec).ok());
  auto fleet_report = fleet.Run();
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();

  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions platform_options;
  platform_options.seed = kSeed;
  PlatformSimulation platform(WorkloadRegistry::Default(), **eviction,
                              platform_options);
  ASSERT_TRUE(platform.DeployFunction(profile, *policy).ok());
  auto platform_report = platform.RunClosedLoop(kRequests);
  ASSERT_TRUE(platform_report.ok()) << platform_report.status().ToString();

  ASSERT_EQ(platform_report->per_function.size(), 1u);
  const SimulationReport& platform_function =
      platform_report->per_function.at(profile.name);
  const ClusterReport* fleet_function = fleet_report->Find(profile.name);
  ASSERT_NE(fleet_function, nullptr);
  EXPECT_EQ(platform_function.records.size(), kRequests);
  EXPECT_EQ(fleet_function->records.size(), kRequests);
  EXPECT_EQ(fleet_report->Digest(), platform_report->Digest());
}

// --- The unified Simulate() surface ------------------------------------
//
// Simulate() is a veneer over the same kernel, so each topology must replay
// its historical driver bit-for-bit on the PR 3 golden seeds.

constexpr uint64_t kGoldenSeed = 21;
constexpr uint64_t kGoldenRequests = 300;

SimOptions GoldenOptions() {
  SimOptions options;
  options.seed = kGoldenSeed;
  options.worker_slots = 1;
  options.exploring_slots = 1;
  options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  options.eviction.k = 4;
  return options;
}

SimFunctionSpec GoldenSpec(const WorkloadProfile& profile,
                           const OrchestrationPolicy& policy) {
  SimFunctionSpec spec;
  spec.name = profile.name;
  spec.profile = &profile;
  spec.policy = &policy;
  spec.requests = kGoldenRequests;
  return spec;
}

TEST(SimulateEquivalenceTest, SingleTopologyReplaysFunctionSimulation) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile& profile = Profile("DynamicHTML");

  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions old_options;
  old_options.seed = kGoldenSeed;
  FunctionSimulation function(profile, WorkloadRegistry::Default(), *policy,
                              **eviction, old_options);
  auto old_report = function.RunClosedLoop(kGoldenRequests);
  ASSERT_TRUE(old_report.ok()) << old_report.status().ToString();

  const SimOptions options = GoldenOptions();
  const SimFunctionSpec spec = GoldenSpec(profile, *policy);
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options);
  ASSERT_TRUE(report.ok()) << report.status().ToString();

  ExpectIdenticalRecords(report->flat(), *old_report);
  EXPECT_EQ(ClusterReportCrc32(report->flat()), ClusterReportCrc32(*old_report));
}

TEST(SimulateEquivalenceTest, PlatformAndFleetTopologiesShareTheGoldenDigest) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile& profile = Profile("DynamicHTML");

  // The historical driver's digest for the golden configuration.
  SimOptions fleet_options;
  fleet_options.seed = kGoldenSeed;
  fleet_options.threads = 1;
  fleet_options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
  fleet_options.eviction.k = 4;
  FleetSimulation fleet(WorkloadRegistry::Default(), fleet_options);
  FleetFunctionSpec old_spec;
  old_spec.name = profile.name;
  old_spec.profile = &profile;
  old_spec.policy = &*policy;
  old_spec.requests = kGoldenRequests;
  old_spec.worker_slots = 1;
  old_spec.exploring_slots = 1;
  ASSERT_TRUE(fleet.AddFunction(old_spec).ok());
  auto old_report = fleet.Run();
  ASSERT_TRUE(old_report.ok()) << old_report.status().ToString();

  const SimOptions options = GoldenOptions();
  const SimFunctionSpec spec = GoldenSpec(profile, *policy);
  auto platform_report =
      Simulate(WorkloadRegistry::Default(), SimTopology::kPlatform,
               std::span<const SimFunctionSpec>(&spec, 1), options);
  ASSERT_TRUE(platform_report.ok()) << platform_report.status().ToString();
  auto fleet_report =
      Simulate(WorkloadRegistry::Default(), SimTopology::kFleet,
               std::span<const SimFunctionSpec>(&spec, 1), options);
  ASSERT_TRUE(fleet_report.ok()) << fleet_report.status().ToString();

  EXPECT_EQ(platform_report->Digest(), old_report->Digest());
  EXPECT_EQ(fleet_report->Digest(), old_report->Digest());
}

TEST(SimulateEquivalenceTest, ObservabilityAndThreadCountNeverPerturbDigests) {
  // The acceptance bar for the obs layer: fleet digests are bit-identical at
  // every thread count, with the sink attached and detached alike.
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const WorkloadProfile* profiles[] = {&Profile("DynamicHTML"), &Profile("BFS"),
                                       &Profile("MST")};

  std::vector<SimFunctionSpec> specs;
  for (const WorkloadProfile* profile : profiles) {
    specs.push_back(GoldenSpec(*profile, *policy));
  }

  std::vector<uint32_t> digests;
  for (const uint32_t threads : {1u, 2u, 8u}) {
    for (const bool with_obs : {false, true}) {
      SimOptions options = GoldenOptions();
      options.threads = threads;
      StandardObs obs;
      auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kFleet,
                             specs, options, with_obs ? &obs : nullptr);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      digests.push_back(report->Digest());
      if (with_obs) {
        EXPECT_GT(obs.trace().recorded(), 0u);
        EXPECT_FALSE(report->metrics.empty());
      }
    }
  }
  for (const uint32_t digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

}  // namespace
}  // namespace pronghorn
