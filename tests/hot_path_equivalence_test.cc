// Hot-path equivalence: the incremental weight math, the swap-to-front
// candidate ordering, and the decoded-policy-state cache are pure CPU
// optimizations — every observable value must match the naive recompute
// bit for bit, and every simulated trajectory must be identical with the
// optimizations on or off. These tests pin that contract with exact (==)
// floating-point comparisons, never tolerances.

#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/core/policy_state_store.h"
#include "src/core/request_centric_policy.h"
#include "src/core/weight_vector.h"
#include "src/platform/simulate.h"
#include "src/store/fault_injection.h"
#include "src/store/kv_database.h"

namespace pronghorn {
namespace {

constexpr double kAlpha = 0.3;
constexpr double kMu = 1e-6;

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 3;
  config.max_checkpoint_request = 30;
  return config;
}

// The naive folds the WeightVector caches must reproduce exactly, computed
// against a plain shadow vector with the same out-of-range convention
// (entries beyond the end read as unexplored).
double ShadowAt(const std::vector<double>& values, uint64_t i) {
  return i < values.size() ? values[i] : 0.0;
}

double ShadowLifetimeWeight(const std::vector<double>& values, uint64_t start,
                            uint32_t beta, double mu) {
  double sum = 0.0;
  for (uint64_t i = start; i <= start + beta; ++i) {
    sum += InverseWeight(ShadowAt(values, i), mu);
  }
  return sum / static_cast<double>(beta);
}

void ShadowUpdate(std::vector<double>& values, uint64_t i, double latency,
                  double alpha) {
  if (i >= values.size() || latency <= 0.0) {
    return;
  }
  values[i] = values[i] == 0.0 ? latency : EwmaUpdate(values[i], latency, alpha);
}

TEST(IncrementalWeightMathTest, MatchesNaiveRecomputeToTheLastUlp) {
  constexpr uint32_t kLength = 121;  // W = 100, beta = 20.
  constexpr uint32_t kBeta = 20;
  WeightVector theta(kLength);
  std::vector<double> shadow(kLength, 0.0);
  Rng rng(1234);

  for (int step = 0; step < 4000; ++step) {
    // Interleave mutation and queries so the memo's invalidate/refresh
    // machinery is exercised, not just a single warm-up.
    const uint64_t index = rng.UniformUint64(kLength + 10);  // Some out of range.
    const double latency = rng.UniformDouble() * 0.2 - 0.002;  // Some <= 0.
    theta.Update(index, latency, kAlpha);
    ShadowUpdate(shadow, index, latency, kAlpha);

    const uint64_t start = rng.UniformUint64(kLength + 5);
    ASSERT_EQ(theta.LifetimeWeight(start, kBeta, kMu),
              ShadowLifetimeWeight(shadow, start, kBeta, kMu))
        << "step " << step << " start " << start;

    if (step % 7 == 0) {
      const uint64_t lo = rng.UniformUint64(kLength);
      const uint64_t hi = lo + rng.UniformUint64(kBeta + 1);
      const std::vector<double> got = theta.InverseWeights(lo, hi, kMu);
      const std::span<const double> view = theta.InverseWeightsSpan(lo, hi, kMu);
      ASSERT_EQ(got.size(), view.size());
      for (size_t i = 0; i < got.size(); ++i) {
        ASSERT_EQ(got[i], InverseWeight(ShadowAt(shadow, lo + i), kMu));
        ASSERT_EQ(view[i], got[i]);
      }
    }

    if (step % 11 == 0) {
      // A different mu forces the cache rebuild path and must still agree.
      const double other_mu = 1e-3;
      ASSERT_EQ(theta.LifetimeWeight(start, kBeta, other_mu),
                ShadowLifetimeWeight(shadow, start, kBeta, other_mu));
    }

    uint32_t scan = 0;
    for (double v : shadow) {
      scan += v > 0.0 ? 1 : 0;
    }
    ASSERT_EQ(theta.ExploredCount(), scan);
  }
}

TEST(IncrementalWeightMathTest, SerializationRoundTripPreservesDerivedState) {
  WeightVector theta(40);
  Rng rng(9);
  for (int i = 0; i < 200; ++i) {
    theta.Update(rng.UniformUint64(40), rng.UniformDouble(), kAlpha);
  }
  // Warm the caches, then round-trip and compare every derived quantity.
  (void)theta.LifetimeWeight(3, 5, kMu);
  ByteWriter writer;
  theta.Serialize(writer);
  const std::vector<uint8_t> wire = writer.TakeData();
  ByteReader reader(wire);
  const auto restored = WeightVector::Deserialize(reader);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(*restored, theta);
  EXPECT_EQ(restored->ExploredCount(), theta.ExploredCount());
  for (uint64_t start = 0; start < 45; ++start) {
    EXPECT_EQ(restored->LifetimeWeight(start, 5, kMu),
              theta.LifetimeWeight(start, 5, kMu));
  }
}

// Reference implementation of the pre-optimization OnWorkerStart: naive
// weights, full-range sort with the comparator that special-cased the drawn
// index. The policy's swap-to-front + tail sort must reproduce its output
// and its RNG consumption exactly.
struct ReferenceDecision {
  std::optional<SnapshotId> restore_from;
  std::vector<SnapshotId> restore_candidates;
  std::optional<uint64_t> checkpoint_at_request;
};

ReferenceDecision ReferenceOnWorkerStart(const PolicyConfig& config,
                                         const PolicyState& state,
                                         const std::vector<double>& shadow_theta,
                                         Rng& rng) {
  ReferenceDecision decision;
  uint64_t start_request = 0;
  if (!state.pool.empty()) {
    std::vector<double> weights;
    for (const PoolEntry& entry : state.pool.entries()) {
      weights.push_back(ShadowLifetimeWeight(shadow_theta,
                                             entry.metadata.request_number,
                                             config.beta, config.mu));
    }
    const std::vector<double> probabilities =
        Softmax(weights, config.softmax_temperature);
    const size_t first_index = rng.WeightedIndex(probabilities);
    const auto entries = state.pool.entries();
    std::vector<size_t> order(entries.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (a == first_index || b == first_index) {
        return a == first_index;
      }
      if (probabilities[a] != probabilities[b]) {
        return probabilities[a] > probabilities[b];
      }
      return entries[a].metadata.id.value > entries[b].metadata.id.value;
    });
    for (const size_t index : order) {
      decision.restore_candidates.push_back(entries[index].metadata.id);
    }
    decision.restore_from = entries[first_index].metadata.id;
    start_request = entries[first_index].metadata.request_number;
  }
  const uint64_t lo = start_request + 1;
  const uint64_t hi =
      std::min<uint64_t>(start_request + config.beta, config.max_checkpoint_request);
  if (lo <= hi) {
    std::vector<double> weights;
    const uint64_t clamped_hi =
        std::min<uint64_t>(hi, shadow_theta.empty() ? 0 : shadow_theta.size() - 1);
    for (uint64_t i = lo; i <= clamped_hi && lo <= clamped_hi; ++i) {
      weights.push_back(InverseWeight(shadow_theta[i], config.mu));
    }
    if (!weights.empty()) {
      decision.checkpoint_at_request = lo + rng.WeightedIndex(weights);
    }
  }
  return decision;
}

TEST(CandidateOrderingTest, SwapToFrontMatchesLegacyComparatorAndRngDraws) {
  PolicyConfig config = TestConfig();
  config.pool_capacity = 6;
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  Rng setup_rng(77);
  for (int round = 0; round < 200; ++round) {
    PolicyState state(config);
    std::vector<double> shadow(config.WeightVectorLength(), 0.0);
    const int updates = static_cast<int>(setup_rng.UniformUint64(120));
    for (int i = 0; i < updates; ++i) {
      const uint64_t index = setup_rng.UniformUint64(config.WeightVectorLength());
      const double latency = 0.001 + setup_rng.UniformDouble() * 0.1;
      state.theta.Update(index, latency, kAlpha);
      ShadowUpdate(shadow, index, latency, kAlpha);
    }
    const uint64_t pool_size = setup_rng.UniformUint64(7);  // 0..6 entries.
    for (uint64_t i = 1; i <= pool_size; ++i) {
      PoolEntry entry;
      entry.metadata.id = SnapshotId{100 * static_cast<uint64_t>(round) + i};
      entry.metadata.function = "equiv";
      entry.metadata.request_number =
          setup_rng.UniformUint64(config.max_checkpoint_request);
      entry.object_key = "snapshots/equiv/" + std::to_string(i);
      ASSERT_TRUE(state.pool.Add(std::move(entry)).ok());
    }

    // Identical seeds: the optimized path must consume exactly the same
    // draws as the reference, or the trajectories diverge from here on.
    Rng optimized_rng(1000 + static_cast<uint64_t>(round));
    Rng reference_rng(1000 + static_cast<uint64_t>(round));
    const StartDecision got = policy->OnWorkerStart(state, optimized_rng);
    const ReferenceDecision want =
        ReferenceOnWorkerStart(config, state, shadow, reference_rng);

    EXPECT_EQ(got.restore_from.has_value(), want.restore_from.has_value());
    if (got.restore_from && want.restore_from) {
      EXPECT_EQ(got.restore_from->value, want.restore_from->value);
    }
    ASSERT_EQ(got.restore_candidates.size(), want.restore_candidates.size());
    for (size_t i = 0; i < got.restore_candidates.size(); ++i) {
      EXPECT_EQ(got.restore_candidates[i].value, want.restore_candidates[i].value)
          << "round " << round << " rank " << i;
    }
    EXPECT_EQ(got.checkpoint_at_request, want.checkpoint_at_request);
    EXPECT_EQ(optimized_rng.NextUint64(), reference_rng.NextUint64())
        << "RNG streams diverged in round " << round;
  }
}

// --- PolicyStateStore decoded-state cache -----------------------------------

// Drives the same operation sequence through a cache-enabled and a
// cache-disabled store (each with its own database and, under chaos, its own
// identically-seeded fault decorator) and asserts every observable —
// statuses, stored blobs, loaded states, retry stats — is identical.
void RunStoreEquivalence(bool with_faults) {
  const PolicyConfig config = TestConfig();
  FaultPlan plan;
  if (with_faults) {
    // The chaos plan from chaos_recovery_test.cc's convergence scenario.
    plan.get_failure_rate = 0.10;
    plan.put_failure_rate = 0.10;
    plan.delete_failure_rate = 0.10;
    plan.metadata_failure_rate = 0.10;
    plan.corruption_rate = 0.02;
    plan.seed = 42;
  }

  InMemoryKvDatabase inner_cached;
  InMemoryKvDatabase inner_plain;
  FaultyKvDatabase faulty_cached(inner_cached, plan);
  FaultyKvDatabase faulty_plain(inner_plain, plan);
  KvDatabase& db_cached =
      with_faults ? static_cast<KvDatabase&>(faulty_cached) : inner_cached;
  KvDatabase& db_plain =
      with_faults ? static_cast<KvDatabase&>(faulty_plain) : inner_plain;

  PolicyStateStore cached(db_cached, "equiv", config, nullptr,
                          StateStoreRetryPolicy{}, /*enable_cache=*/true);
  PolicyStateStore plain(db_plain, "equiv", config, nullptr,
                         StateStoreRetryPolicy{}, /*enable_cache=*/false);
  ASSERT_TRUE(cached.cache_enabled());
  ASSERT_FALSE(plain.cache_enabled());

  Rng rng(5);
  for (int op = 0; op < 300; ++op) {
    if (rng.UniformUint64(4) == 0) {
      auto a = cached.Load();
      auto b = plain.Load();
      ASSERT_EQ(a.ok(), b.ok()) << "op " << op;
      if (a.ok()) {
        ASSERT_TRUE(*a == *b) << "op " << op;
      }
    } else {
      const uint64_t request = rng.UniformUint64(config.WeightVectorLength());
      const double latency = 0.001 + rng.UniformDouble() * 0.05;
      const auto mutate = [&](PolicyState& state) {
        state.theta.Update(request, latency, kAlpha);
      };
      const Status a = cached.Update(mutate);
      const Status b = plain.Update(mutate);
      ASSERT_EQ(a.code(), b.code()) << "op " << op;
    }
  }

  // Stored blobs and retry accounting are byte-for-byte identical.
  const auto blob_a = inner_cached.Get("policy/equiv/state");
  const auto blob_b = inner_plain.Get("policy/equiv/state");
  ASSERT_EQ(blob_a.ok(), blob_b.ok());
  if (blob_a.ok()) {
    EXPECT_EQ(*blob_a, *blob_b);
  }
  EXPECT_EQ(cached.stats().loads, plain.stats().loads);
  EXPECT_EQ(cached.stats().updates, plain.stats().updates);
  EXPECT_EQ(cached.stats().cas_attempts, plain.stats().cas_attempts);
  EXPECT_EQ(cached.stats().cas_conflicts, plain.stats().cas_conflicts);
  EXPECT_EQ(cached.stats().transient_retries, plain.stats().transient_retries);
  EXPECT_EQ(cached.stats().total_backoff, plain.stats().total_backoff);

  // The cache actually worked (and never reported activity when disabled).
  EXPECT_GT(cached.cache_stats().hits, 0u);
  EXPECT_EQ(plain.cache_stats().hits, 0u);
  EXPECT_EQ(plain.cache_stats().misses, 0u);
}

TEST(PolicyStateStoreCacheTest, FaultFreeTrajectoriesIdenticalCacheOnOff) {
  RunStoreEquivalence(/*with_faults=*/false);
}

TEST(PolicyStateStoreCacheTest, ChaosTrajectoriesIdenticalCacheOnOff) {
  RunStoreEquivalence(/*with_faults=*/true);
}

TEST(PolicyStateStoreCacheTest, ConcurrentWriterInvalidatesByVersion) {
  const PolicyConfig config = TestConfig();
  InMemoryKvDatabase db;
  PolicyStateStore a(db, "shared", config);
  PolicyStateStore b(db, "shared", config);

  ASSERT_TRUE(a.Update([](PolicyState& s) { s.theta.Update(1, 0.5, kAlpha); }).ok());
  const uint64_t hits_before = a.cache_stats().hits;
  auto loaded = a.Load();
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(a.cache_stats().hits, hits_before + 1);  // Version matched.

  // Another store advances the blob's version behind a's back; a must
  // re-decode (miss), then resume hitting once its cache is refreshed.
  ASSERT_TRUE(b.Update([](PolicyState& s) { s.theta.Update(2, 0.7, kAlpha); }).ok());
  const uint64_t misses_before = a.cache_stats().misses;
  auto reloaded = a.Load();
  ASSERT_TRUE(reloaded.ok());
  EXPECT_EQ(a.cache_stats().misses, misses_before + 1);
  EXPECT_EQ(a.cache_stats().hits, hits_before + 1);
  auto again = a.Load();
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(a.cache_stats().hits, hits_before + 2);
  ASSERT_TRUE(*reloaded == *again);
}

TEST(PolicyStateStoreCacheTest, FleetDigestIdenticalCacheOnOffUnderChaos) {
  // Full-stack version of the equivalence: an entire chaos fleet run must
  // produce the same digest with the cache on and off, at several thread
  // counts (the acceptance bar wired into CI's perf-smoke job).
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const auto& registry = WorkloadRegistry::Default();
  const auto dynamic_html = registry.Find("DynamicHTML");
  const auto bfs = registry.Find("BFS");
  ASSERT_TRUE(dynamic_html.ok());
  ASSERT_TRUE(bfs.ok());
  const WorkloadProfile* profiles[] = {*dynamic_html, *bfs};

  std::vector<SimFunctionSpec> specs;
  for (const WorkloadProfile* profile : profiles) {
    SimFunctionSpec spec;
    spec.name = profile->name;
    spec.profile = profile;
    spec.policy = &*policy;
    spec.requests = 150;
    specs.push_back(spec);
  }

  std::vector<uint32_t> digests;
  for (const uint32_t threads : {1u, 2u}) {
    for (const bool cache : {true, false}) {
      SimOptions options;
      options.seed = 7;
      options.threads = threads;
      options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
      options.eviction.k = 4;
      options.faults.get_failure_rate = 0.10;
      options.faults.put_failure_rate = 0.10;
      options.faults.delete_failure_rate = 0.10;
      options.faults.metadata_failure_rate = 0.10;
      options.faults.corruption_rate = 0.02;
      options.faults.seed = 42;
      options.state_cache = cache;
      auto report =
          Simulate(registry, SimTopology::kFleet, specs, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      EXPECT_GT(report->faults.store_faults + report->faults.db_faults, 0u);
      digests.push_back(report->Digest());
    }
  }
  for (const uint32_t digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

}  // namespace
}  // namespace pronghorn
