#include "src/core/stop_condition_policy.h"

#include <gtest/gtest.h>

#include "src/core/request_centric_policy.h"
#include "src/platform/function_simulation.h"

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 6;
  config.max_checkpoint_request = 30;
  return config;
}

PoolEntry Entry(uint64_t id, uint64_t request_number) {
  PoolEntry entry;
  entry.metadata.id = SnapshotId{id};
  entry.metadata.function = "f";
  entry.metadata.request_number = request_number;
  entry.object_key = "snapshots/f/" + std::to_string(id);
  return entry;
}

TEST(StopConditionPolicyTest, DelegatesWhileExploring) {
  const auto inner = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(inner.ok());
  const StopConditionPolicy policy(*inner, /*explore_requests=*/100);
  PolicyState state(TestConfig());
  Rng rng(1);
  EXPECT_FALSE(policy.frozen());
  const StartDecision decision = policy.OnWorkerStart(state, rng);
  // Inner policy behavior: cold start with a checkpoint plan.
  EXPECT_FALSE(decision.restore_from.has_value());
  EXPECT_TRUE(decision.checkpoint_at_request.has_value());
}

TEST(StopConditionPolicyTest, FreezesAfterBudget) {
  const auto inner = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(inner.ok());
  const StopConditionPolicy policy(*inner, /*explore_requests=*/10);
  PolicyState state(TestConfig());
  ASSERT_TRUE(state.pool.Add(Entry(1, 5)).ok());
  for (uint64_t i = 1; i <= 10; ++i) {
    policy.OnRequestComplete(state, i, Duration::Millis(50));
  }
  EXPECT_TRUE(policy.frozen());
  EXPECT_EQ(policy.requests_seen(), 10u);

  Rng rng(2);
  const StartDecision decision = policy.OnWorkerStart(state, rng);
  ASSERT_TRUE(decision.restore_from.has_value());
  // Frozen: never plans another checkpoint.
  EXPECT_FALSE(decision.checkpoint_at_request.has_value());
}

TEST(StopConditionPolicyTest, FrozenPicksBestSnapshotDeterministically) {
  const auto inner = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(inner.ok());
  const StopConditionPolicy policy(*inner, /*explore_requests=*/0);
  PolicyState state(TestConfig());
  ASSERT_TRUE(state.pool.Add(Entry(1, 0)).ok());   // Slow region below.
  ASSERT_TRUE(state.pool.Add(Entry(2, 20)).ok());  // Fast region below.
  for (uint64_t i = 0; i <= 10; ++i) {
    state.theta.Update(i, 0.2, 1.0);
  }
  for (uint64_t i = 20; i <= 30; ++i) {
    state.theta.Update(i, 0.02, 1.0);
  }
  Rng rng(3);
  for (int i = 0; i < 50; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    ASSERT_TRUE(decision.restore_from.has_value());
    EXPECT_EQ(decision.restore_from->value, 2u);  // Always the best, no draw.
  }
}

TEST(StopConditionPolicyTest, FrozenWithEmptyPoolColdStarts) {
  const auto inner = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(inner.ok());
  const StopConditionPolicy policy(*inner, 0);
  PolicyState state(TestConfig());
  Rng rng(4);
  const StartDecision decision = policy.OnWorkerStart(state, rng);
  EXPECT_FALSE(decision.restore_from.has_value());
  EXPECT_FALSE(decision.checkpoint_at_request.has_value());
}

TEST(StopConditionPolicyTest, KnowledgeKeepsFlowingWhenFrozen) {
  const auto inner = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(inner.ok());
  const StopConditionPolicy policy(*inner, 0);
  PolicyState state(TestConfig());
  policy.OnRequestComplete(state, 3, Duration::Millis(70));
  EXPECT_DOUBLE_EQ(state.theta.At(3), 0.070);
}

TEST(StopConditionPolicyTest, EndToEndCheckpointingCeases) {
  // §5.3: after the exploration budget, checkpoint overhead stops entirely
  // while hot-start performance persists.
  const auto profile = WorkloadRegistry::Default().Find("DynamicHTML");
  ASSERT_TRUE(profile.ok());
  PolicyConfig config;
  config.beta = 1;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  const auto inner = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(inner.ok());
  const StopConditionPolicy policy(*inner, /*explore_requests=*/200);  // W + 100.

  auto eviction = EveryKRequestsEviction::Create(1);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.seed = 12;
  FunctionSimulation sim(**profile, WorkloadRegistry::Default(), policy, **eviction,
                         options);
  auto explore_phase = sim.RunClosedLoop(200);
  ASSERT_TRUE(explore_phase.ok());
  EXPECT_GT(explore_phase->checkpoints, 0u);

  auto frozen_phase = sim.RunClosedLoop(200);
  ASSERT_TRUE(frozen_phase.ok());
  EXPECT_EQ(frozen_phase->checkpoints, 0u);
  // Performance persists: the frozen phase keeps (within noise) the hot-start
  // latency the exploration phase achieved.
  EXPECT_LT(frozen_phase->MedianLatencyUs(), explore_phase->MedianLatencyUs() * 1.1);
  // And network upload traffic has ceased (only restore downloads remain).
  EXPECT_EQ(frozen_phase->object_store.put_count, explore_phase->object_store.put_count);
}

}  // namespace
}  // namespace pronghorn
