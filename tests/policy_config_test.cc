#include "src/core/policy_config.h"

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

PolicyConfig PaperConfig() {
  // §5.1: p = 40%, gamma = 10%, C = 12, W = 100 (PyPy).
  PolicyConfig config;
  config.beta = 20;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  config.retain_top_percent = 40.0;
  config.retain_random_percent = 10.0;
  return config;
}

TEST(PolicyConfigTest, PaperConfigurationValidates) {
  EXPECT_TRUE(PaperConfig().Validate().ok());
}

TEST(PolicyConfigTest, DefaultsValidate) { EXPECT_TRUE(PolicyConfig{}.Validate().ok()); }

TEST(PolicyConfigTest, WeightVectorLengthCoversLifetimeBeyondW) {
  PolicyConfig config = PaperConfig();
  // A worker restored at W still reports beta more latencies.
  EXPECT_EQ(config.WeightVectorLength(), 100u + 20u + 1u);
}

struct InvalidCase {
  const char* name;
  void (*mutate)(PolicyConfig&);
};

class PolicyConfigInvalidSweep : public ::testing::TestWithParam<InvalidCase> {};

TEST_P(PolicyConfigInvalidSweep, Rejected) {
  PolicyConfig config = PaperConfig();
  GetParam().mutate(config);
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

INSTANTIATE_TEST_SUITE_P(
    AllFields, PolicyConfigInvalidSweep,
    ::testing::Values(
        InvalidCase{"zero_beta", [](PolicyConfig& c) { c.beta = 0; }},
        InvalidCase{"zero_capacity", [](PolicyConfig& c) { c.pool_capacity = 0; }},
        InvalidCase{"zero_w", [](PolicyConfig& c) { c.max_checkpoint_request = 0; }},
        InvalidCase{"alpha_zero", [](PolicyConfig& c) { c.alpha = 0.0; }},
        InvalidCase{"alpha_above_one", [](PolicyConfig& c) { c.alpha = 1.5; }},
        InvalidCase{"negative_p", [](PolicyConfig& c) { c.retain_top_percent = -1; }},
        InvalidCase{"p_above_100", [](PolicyConfig& c) { c.retain_top_percent = 101; }},
        InvalidCase{"negative_gamma",
                    [](PolicyConfig& c) { c.retain_random_percent = -1; }},
        InvalidCase{"p_plus_gamma_above_100",
                    [](PolicyConfig& c) {
                      c.retain_top_percent = 60;
                      c.retain_random_percent = 50;
                    }},
        InvalidCase{"zero_mu", [](PolicyConfig& c) { c.mu = 0.0; }},
        InvalidCase{"negative_mu", [](PolicyConfig& c) { c.mu = -1e-6; }},
        InvalidCase{"zero_temperature",
                    [](PolicyConfig& c) { c.softmax_temperature = 0.0; }}),
    [](const ::testing::TestParamInfo<InvalidCase>& info) { return info.param.name; });

TEST(PolicyConfigTest, BoundaryValuesAccepted) {
  PolicyConfig config = PaperConfig();
  config.alpha = 1.0;  // Pure replacement is legal.
  EXPECT_TRUE(config.Validate().ok());
  config.retain_top_percent = 100.0;
  config.retain_random_percent = 0.0;
  EXPECT_TRUE(config.Validate().ok());
  config.beta = 1;
  EXPECT_TRUE(config.Validate().ok());
}

}  // namespace
}  // namespace pronghorn
