// End-to-end integration tests: the paper's headline claims must hold on the
// full stack (policy + orchestrator + checkpoint engine + stores + platform).

#include <gtest/gtest.h>

#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/analysis.h"
#include "src/platform/function_simulation.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

PolicyConfig PaperConfig(const WorkloadProfile& profile, uint32_t eviction_k) {
  PolicyConfig config;
  config.beta = eviction_k;
  config.pool_capacity = 12;
  config.max_checkpoint_request = profile.family == RuntimeFamily::kJvm ? 200 : 100;
  config.retain_top_percent = 40.0;
  config.retain_random_percent = 10.0;
  return config;
}

SimulationReport RunExperiment(const WorkloadProfile& profile, const OrchestrationPolicy& policy,
                     uint64_t eviction_k, uint64_t requests, uint64_t seed) {
  auto eviction = EveryKRequestsEviction::Create(eviction_k);
  EXPECT_TRUE(eviction.ok());
  SimOptions options;
  options.seed = seed;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), policy, **eviction,
                         options);
  auto report = sim.RunClosedLoop(requests);
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *std::move(report);
}

TEST(IntegrationTest, RequestCentricBeatsStateOfTheArtOnComputeBound) {
  // Figure 4/5 headline: 20-58% median latency reduction on compute-bound
  // benchmarks at eviction rate 1.
  for (const char* name : {"BFS", "DynamicHTML", "HTMLRendering", "WordCount"}) {
    const WorkloadProfile& profile = Profile(name);
    const PolicyConfig config = PaperConfig(profile, 1);
    const CheckpointAfterFirstPolicy baseline(config);
    const auto request_centric = RequestCentricPolicy::Create(config);
    ASSERT_TRUE(request_centric.ok());

    const SimulationReport baseline_report = RunExperiment(profile, baseline, 1, 500, 42);
    const SimulationReport rc_report = RunExperiment(profile, *request_centric, 1, 500, 42);
    const double improvement = MedianImprovementPercent(baseline_report, rc_report);
    EXPECT_GE(improvement, 15.0) << name;
    EXPECT_LE(improvement, 65.0) << name;
  }
}

TEST(IntegrationTest, StateOfTheArtBeatsColdStart) {
  // Checkpoint-restore itself helps: after-1st skips lazy initialization.
  const WorkloadProfile& profile = Profile("HTMLRendering");
  const PolicyConfig config = PaperConfig(profile, 1);
  const ColdStartPolicy cold(config);
  const CheckpointAfterFirstPolicy after_first(config);
  const SimulationReport cold_report = RunExperiment(profile, cold, 1, 300, 7);
  const SimulationReport sota_report = RunExperiment(profile, after_first, 1, 300, 7);
  EXPECT_GT(MedianImprovementPercent(cold_report, sota_report), 30.0);
}

TEST(IntegrationTest, IoBoundWorkloadsAreOnPar) {
  // Figure 4: Compression/Thumbnailer/Video within ~5% of state of the art;
  // Uploader marginal (native library, no JIT benefit).
  for (const char* name : {"Compression", "Thumbnailer", "Video", "Uploader"}) {
    const WorkloadProfile& profile = Profile(name);
    const PolicyConfig config = PaperConfig(profile, 1);
    const CheckpointAfterFirstPolicy baseline(config);
    const auto request_centric = RequestCentricPolicy::Create(config);
    ASSERT_TRUE(request_centric.ok());
    const SimulationReport baseline_report = RunExperiment(profile, baseline, 1, 400, 11);
    const SimulationReport rc_report = RunExperiment(profile, *request_centric, 1, 400, 11);
    const double improvement = MedianImprovementPercent(baseline_report, rc_report);
    EXPECT_GT(improvement, -10.0) << name;
    EXPECT_LT(improvement, 15.0) << name;
  }
}

TEST(IntegrationTest, GainsShrinkWithLongerWorkerLifetimes) {
  // §5.2 "Request rates": 37.2% at eviction 1 > 22.5% at 4 > 13.5% at 20.
  // We assert the qualitative ordering between the extremes.
  const WorkloadProfile& profile = Profile("HTMLRendering");
  double improvements[2];
  int i = 0;
  for (uint32_t k : {1u, 20u}) {
    const PolicyConfig config = PaperConfig(profile, k);
    const CheckpointAfterFirstPolicy baseline(config);
    const auto request_centric = RequestCentricPolicy::Create(config);
    ASSERT_TRUE(request_centric.ok());
    const SimulationReport baseline_report = RunExperiment(profile, baseline, k, 500, 3);
    const SimulationReport rc_report = RunExperiment(profile, *request_centric, k, 500, 3);
    improvements[i++] = MedianImprovementPercent(baseline_report, rc_report);
  }
  EXPECT_GT(improvements[0], improvements[1] + 5.0);
  EXPECT_GT(improvements[1], 0.0);
}

TEST(IntegrationTest, ConvergenceWithinWPlus100) {
  // §5.3 "Bounding system costs": the request-centric policy converges in
  // less than W + 100 requests for every benchmark. Spot-check one per
  // family with the Table 4 window-20/2% methodology, at a relaxed
  // tolerance (the paper averages over many runs; we check one seed with
  // input noise enabled).
  for (const char* name : {"DynamicHTML", "Hash"}) {
    const WorkloadProfile& profile = Profile(name);
    const PolicyConfig config = PaperConfig(profile, 1);
    const auto policy = RequestCentricPolicy::Create(config);
    ASSERT_TRUE(policy.ok());
    const SimulationReport report = RunExperiment(profile, *policy, 1, 500, 21);
    const auto convergence = ConvergenceRequest(report.records, 20, 0.10);
    ASSERT_TRUE(convergence.has_value()) << name;
    EXPECT_LT(*convergence, config.max_checkpoint_request + 100) << name;
  }
}

TEST(IntegrationTest, SnapshotPoolStaysBounded) {
  const WorkloadProfile& profile = Profile("MST");
  const PolicyConfig config = PaperConfig(profile, 1);
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  auto eviction = EveryKRequestsEviction::Create(1);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.seed = 5;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, **eviction,
                         options);
  auto report = sim.RunClosedLoop(400);
  ASSERT_TRUE(report.ok());

  auto state = sim.LoadPolicyState();
  ASSERT_TRUE(state.ok());
  EXPECT_LE(state->pool.size(), config.pool_capacity);
  // Storage high-water mark ~ C x snapshot size (Table 5's max storage).
  const double max_storage_mb =
      static_cast<double>(report->object_store.peak_logical_bytes) / (1024.0 * 1024.0);
  EXPECT_LE(max_storage_mb, profile.snapshot_mb * (config.pool_capacity + 1) * 1.1);
  EXPECT_GT(max_storage_mb, profile.snapshot_mb * 2);
}

TEST(IntegrationTest, NetworkCostIsTwiceBaselinePerLifetime) {
  // Table 5: during exploration Pronghorn moves ~2x the baseline's bytes
  // per container lifetime (one restore download + one checkpoint upload).
  const WorkloadProfile& profile = Profile("BFS");
  const PolicyConfig config = PaperConfig(profile, 1);
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());
  const SimulationReport report = RunExperiment(profile, *policy, 1, 300, 13);

  const double uploaded = static_cast<double>(report.object_store.network_bytes_uploaded);
  const double downloaded =
      static_cast<double>(report.object_store.network_bytes_downloaded);
  ASSERT_GT(downloaded, 0.0);
  EXPECT_NEAR(uploaded / downloaded, 1.0, 0.25);
}

TEST(IntegrationTest, ContinuousLearningSurvivesInputShift) {
  // §3.3 "Continuous learning": after the input distribution shifts, the
  // EWMA keeps estimates fresh and the policy keeps its advantage.
  const WorkloadProfile& profile = Profile("DynamicHTML");
  const PolicyConfig config = PaperConfig(profile, 1);
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());
  const CheckpointAfterFirstPolicy baseline(config);

  auto run_with_shift = [&](const OrchestrationPolicy& p) {
    auto eviction = EveryKRequestsEviction::Create(1);
    EXPECT_TRUE(eviction.ok());
    SimOptions options;
    options.seed = 17;
    FunctionSimulation sim(profile, WorkloadRegistry::Default(), p, **eviction, options);
    // Phase 1: 300 requests of normal traffic.
    auto phase1 = sim.RunClosedLoop(300);
    EXPECT_TRUE(phase1.ok());
    // Phase 2: continue (same learned state) for another 300.
    auto phase2 = sim.RunClosedLoop(300);
    EXPECT_TRUE(phase2.ok());
    return phase2->MedianLatencyUs();
  };
  const double rc_median = run_with_shift(*policy);
  const double baseline_median = run_with_shift(baseline);
  EXPECT_LT(rc_median, baseline_median);
}

TEST(IntegrationTest, ExplorationSaturatesAtW) {
  // Once snapshot chains reach W, the policy exploits: tail lifetimes
  // restore at maturity near W (the paper's provider can then stop
  // checkpointing entirely, since the best snapshot is already pooled).
  const WorkloadProfile& profile = Profile("DynamicHTML");
  PolicyConfig config = PaperConfig(profile, 4);
  config.max_checkpoint_request = 20;  // Small W so the run saturates it.
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.seed = 23;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), *policy, **eviction,
                         options);
  auto warmup = sim.RunClosedLoop(600);
  ASSERT_TRUE(warmup.ok());
  auto tail = sim.RunClosedLoop(200);
  ASSERT_TRUE(tail.ok());
  // The median tail request runs at high maturity (>= W): the search space
  // is fully explored and the pool holds late-request snapshots.
  std::vector<double> maturities;
  for (const RequestRecord& record : tail->records) {
    maturities.push_back(static_cast<double>(record.request_number));
  }
  EXPECT_GE(Percentile(maturities, 50.0), 20.0);
  // Checkpointing cost stays bounded at one per lifetime (Algorithm 1 plans
  // at most one checkpoint per worker; the paper's provider can additionally
  // stop checkpointing manually once converged).
  EXPECT_LE(tail->checkpoints, tail->worker_lifetimes);
}

}  // namespace
}  // namespace pronghorn
