#include "src/core/request_centric_policy.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <vector>

#include "src/common/mathutil.h"

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 10;
  config.pool_capacity = 6;
  config.max_checkpoint_request = 50;
  config.alpha = 0.3;
  config.retain_top_percent = 40.0;
  config.retain_random_percent = 10.0;
  return config;
}

RequestCentricPolicy MakePolicy(PolicyConfig config = TestConfig()) {
  auto policy = RequestCentricPolicy::Create(config);
  EXPECT_TRUE(policy.ok());
  return *std::move(policy);
}

PoolEntry Entry(uint64_t id, uint64_t request_number) {
  PoolEntry entry;
  entry.metadata.id = SnapshotId{id};
  entry.metadata.function = "f";
  entry.metadata.request_number = request_number;
  entry.object_key = "snapshots/f/" + std::to_string(id);
  return entry;
}

TEST(RequestCentricPolicyTest, CreateValidatesConfig) {
  PolicyConfig bad = TestConfig();
  bad.alpha = 0.0;
  EXPECT_FALSE(RequestCentricPolicy::Create(bad).ok());
}

TEST(RequestCentricPolicyTest, NameAndConfig) {
  const RequestCentricPolicy policy = MakePolicy();
  EXPECT_EQ(policy.name(), "request-centric");
  EXPECT_EQ(policy.config().beta, 10u);
}

TEST(RequestCentricPolicyTest, EmptyPoolMeansColdStart) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  Rng rng(1);
  const StartDecision decision = policy.OnWorkerStart(state, rng);
  EXPECT_FALSE(decision.restore_from.has_value());
  ASSERT_TRUE(decision.checkpoint_at_request.has_value());
  // Cold worker (start 0): checkpoint drawn from (0, beta].
  EXPECT_GE(*decision.checkpoint_at_request, 1u);
  EXPECT_LE(*decision.checkpoint_at_request, 10u);
}

TEST(RequestCentricPolicyTest, UnexploredRequestsDrawnUniformly) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  Rng rng(2);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 5000; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    counts[*decision.checkpoint_at_request] += 1;
  }
  // All of (0, 10] hit, roughly uniformly (theta all zero -> equal weights).
  ASSERT_EQ(counts.size(), 10u);
  for (const auto& [request, count] : counts) {
    EXPECT_NEAR(count / 5000.0, 0.1, 0.03) << "request " << request;
  }
}

TEST(RequestCentricPolicyTest, ExploredLowLatencyAttractsCheckpoints) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  // Explore the whole first lifetime; request 7 is dramatically fastest.
  for (uint64_t i = 1; i <= 10; ++i) {
    policy.OnRequestComplete(state, i, i == 7 ? Duration::Millis(1)
                                              : Duration::Millis(400));
  }
  Rng rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 4000; ++i) {
    counts[*policy.OnWorkerStart(state, rng).checkpoint_at_request] += 1;
  }
  // 1/(theta+mu) weighting: request 7 carries ~400x the weight of each other.
  EXPECT_GT(counts[7], 3800);
}

TEST(RequestCentricPolicyTest, CheckpointNeverPlannedBeyondW) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(1, 45)).ok());  // Start near W = 50.
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    ASSERT_TRUE(decision.checkpoint_at_request.has_value());
    EXPECT_GT(*decision.checkpoint_at_request, 45u);
    EXPECT_LE(*decision.checkpoint_at_request, 50u);  // Capped at W, not 45+10.
  }
}

TEST(RequestCentricPolicyTest, NoCheckpointWhenStartAtOrBeyondW) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(1, 50)).ok());
  ASSERT_TRUE(state.pool.Add(Entry(2, 60)).ok());
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    EXPECT_FALSE(decision.checkpoint_at_request.has_value());
  }
}

TEST(RequestCentricPolicyTest, RestoresFromPoolWhenAvailable) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(1, 5)).ok());
  Rng rng(6);
  const StartDecision decision = policy.OnWorkerStart(state, rng);
  ASSERT_TRUE(decision.restore_from.has_value());
  EXPECT_EQ(decision.restore_from->value, 1u);
  // Checkpoint plan continues from the snapshot's request number.
  ASSERT_TRUE(decision.checkpoint_at_request.has_value());
  EXPECT_GT(*decision.checkpoint_at_request, 5u);
  EXPECT_LE(*decision.checkpoint_at_request, 15u);
}

TEST(RequestCentricPolicyTest, SoftmaxPrefersFastLifetimes) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  // Snapshot 1 leads into a slow region, snapshot 2 into a fast region.
  ASSERT_TRUE(state.pool.Add(Entry(1, 10)).ok());
  ASSERT_TRUE(state.pool.Add(Entry(2, 30)).ok());
  for (uint64_t i = 10; i <= 20; ++i) {
    policy.OnRequestComplete(state, i, Duration::Millis(200));
  }
  for (uint64_t i = 30; i <= 40; ++i) {
    policy.OnRequestComplete(state, i, Duration::Millis(10));
  }
  Rng rng(7);
  int fast_choices = 0;
  const int trials = 2000;
  for (int i = 0; i < trials; ++i) {
    if (policy.OnWorkerStart(state, rng).restore_from->value == 2) {
      ++fast_choices;
    }
  }
  EXPECT_GT(fast_choices, trials * 9 / 10);
}

TEST(RequestCentricPolicyTest, ExplorationKeepsSlowSnapshotsReachable) {
  // With a modest latency gap, softmax must still occasionally pick the
  // slower snapshot (the paper's local-optima escape property).
  PolicyConfig config = TestConfig();
  const RequestCentricPolicy policy = MakePolicy(config);
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(1, 10)).ok());
  ASSERT_TRUE(state.pool.Add(Entry(2, 30)).ok());
  for (uint64_t i = 10; i <= 20; ++i) {
    policy.OnRequestComplete(state, i, Duration::Seconds(1.00));
  }
  for (uint64_t i = 30; i <= 40; ++i) {
    policy.OnRequestComplete(state, i, Duration::Seconds(0.95));
  }
  Rng rng(8);
  std::set<uint64_t> chosen;
  for (int i = 0; i < 3000; ++i) {
    chosen.insert(policy.OnWorkerStart(state, rng).restore_from->value);
  }
  EXPECT_EQ(chosen.size(), 2u);
}

TEST(RequestCentricPolicyTest, UnexploredSnapshotLifetimesWinSelection) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(1, 10)).ok());  // Explored below.
  ASSERT_TRUE(state.pool.Add(Entry(2, 30)).ok());  // Unexplored lifetime.
  for (uint64_t i = 10; i <= 20; ++i) {
    policy.OnRequestComplete(state, i, Duration::Millis(50));
  }
  Rng rng(9);
  int unexplored_choices = 0;
  for (int i = 0; i < 500; ++i) {
    if (policy.OnWorkerStart(state, rng).restore_from->value == 2) {
      ++unexplored_choices;
    }
  }
  // 1/mu dwarfs every explored weight; softmax is effectively one-hot.
  EXPECT_EQ(unexplored_choices, 500);
}

TEST(RequestCentricPolicyTest, OnRequestCompleteUpdatesTheta) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  policy.OnRequestComplete(state, 4, Duration::Millis(120));
  EXPECT_DOUBLE_EQ(state.theta.At(4), 0.120);
  policy.OnRequestComplete(state, 4, Duration::Millis(240));
  EXPECT_NEAR(state.theta.At(4), 0.3 * 0.240 + 0.7 * 0.120, 1e-12);
}

TEST(RequestCentricPolicyTest, SnapshotWeightsParallelToPool) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  ASSERT_TRUE(state.pool.Add(Entry(1, 0)).ok());
  ASSERT_TRUE(state.pool.Add(Entry(2, 20)).ok());
  for (uint64_t i = 0; i <= 30; ++i) {
    policy.OnRequestComplete(state, i, Duration::Millis(i < 15 ? 100 : 10));
  }
  const auto weights = policy.SnapshotWeights(state);
  ASSERT_EQ(weights.size(), 2u);
  EXPECT_GT(weights[1], weights[0]);
  EXPECT_DOUBLE_EQ(weights[0],
                   state.theta.LifetimeWeight(0, policy.config().beta,
                                              policy.config().mu));
}

TEST(RequestCentricPolicyTest, NoEvictionBelowCapacity) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  for (uint64_t i = 1; i <= policy.config().pool_capacity; ++i) {
    ASSERT_TRUE(state.pool.Add(Entry(i, i)).ok());
  }
  Rng rng(10);
  EXPECT_TRUE(policy.OnSnapshotAdded(state, rng).empty());
  EXPECT_EQ(state.pool.size(), 6u);
}

TEST(RequestCentricPolicyTest, EvictionFiresAboveCapacity) {
  const RequestCentricPolicy policy = MakePolicy();  // C=6, p=40%, gamma=10%.
  PolicyState state(policy.config());
  for (uint64_t i = 1; i <= 7; ++i) {
    ASSERT_TRUE(state.pool.Add(Entry(i, i * 5)).ok());
    policy.OnRequestComplete(state, i * 5, Duration::Millis(10 * i));
  }
  Rng rng(11);
  const auto evicted = policy.OnSnapshotAdded(state, rng);
  // ceil(7 * 0.4) = 3 top kept, floor(7 * 0.1) = 0 random; 4 evicted.
  EXPECT_EQ(evicted.size(), 4u);
  EXPECT_EQ(state.pool.size(), 3u);
  // The fastest lifetimes start at low request numbers here (latency grows
  // with i), so the earliest snapshots survive.
  EXPECT_TRUE(state.pool.Contains(SnapshotId{1}));
}

TEST(RequestCentricPolicyTest, DeterministicGivenSameRngSeed) {
  const RequestCentricPolicy policy = MakePolicy();
  PolicyState state(policy.config());
  for (uint64_t i = 1; i <= 10; ++i) {
    policy.OnRequestComplete(state, i, Duration::Millis(17 * (i % 3 + 1)));
  }
  Rng rng_a(42);
  Rng rng_b(42);
  for (int i = 0; i < 50; ++i) {
    const StartDecision a = policy.OnWorkerStart(state, rng_a);
    const StartDecision b = policy.OnWorkerStart(state, rng_b);
    EXPECT_EQ(a.checkpoint_at_request, b.checkpoint_at_request);
    EXPECT_EQ(a.restore_from.has_value(), b.restore_from.has_value());
  }
}

// Property sweep: for any beta/W combination, planned checkpoints stay in
// (start, min(start+beta, W)].
struct PlanBoundsCase {
  uint32_t beta;
  uint32_t w;
  uint64_t start;
};

class CheckpointPlanBounds : public ::testing::TestWithParam<PlanBoundsCase> {};

TEST_P(CheckpointPlanBounds, InRangeOrAbsent) {
  const auto& param = GetParam();
  PolicyConfig config = TestConfig();
  config.beta = param.beta;
  config.max_checkpoint_request = param.w;
  const RequestCentricPolicy policy = MakePolicy(config);
  PolicyState state(config);
  if (param.start > 0) {
    ASSERT_TRUE(state.pool.Add(Entry(1, param.start)).ok());
  }
  Rng rng(13);
  for (int i = 0; i < 500; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    if (param.start >= param.w) {
      EXPECT_FALSE(decision.checkpoint_at_request.has_value());
    } else {
      ASSERT_TRUE(decision.checkpoint_at_request.has_value());
      EXPECT_GT(*decision.checkpoint_at_request, param.start);
      EXPECT_LE(*decision.checkpoint_at_request,
                std::min<uint64_t>(param.start + param.beta, param.w));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Bounds, CheckpointPlanBounds,
                         ::testing::Values(PlanBoundsCase{1, 100, 0},
                                           PlanBoundsCase{1, 100, 99},
                                           PlanBoundsCase{1, 100, 100},
                                           PlanBoundsCase{4, 100, 98},
                                           PlanBoundsCase{20, 100, 95},
                                           PlanBoundsCase{20, 200, 0},
                                           PlanBoundsCase{20, 200, 199},
                                           PlanBoundsCase{20, 200, 200}));

// Property: for ANY learned state — unexplored, partially explored, fully
// explored — softmax over the snapshot weights is a valid probability
// distribution: one entry per pool snapshot, every entry non-negative,
// entries summing to 1. This is the restore-selection soundness the policy's
// weighted draw relies on.
TEST(RequestCentricPolicyPropertyTest, SoftmaxRestoreWeightsFormADistribution) {
  const RequestCentricPolicy policy = MakePolicy();
  const PolicyConfig& config = policy.config();
  Rng rng(0xd15717);
  for (int trial = 0; trial < 200; ++trial) {
    PolicyState state(config);

    // Random pool: 1..pool_capacity snapshots at random request numbers.
    const size_t pool_size =
        1 + static_cast<size_t>(rng.UniformUint64(config.pool_capacity));
    for (size_t i = 0; i < pool_size; ++i) {
      PoolEntry entry = Entry(i + 1, rng.UniformUint64(config.max_checkpoint_request));
      // Duplicate request numbers are fine; duplicate ids are not.
      ASSERT_TRUE(state.pool.Add(entry).ok());
    }

    // Random theta. Trial 0 keeps it all-zero (nothing explored yet); other
    // trials explore a random subset, so unexplored holes remain common.
    if (trial != 0) {
      const uint32_t length = state.theta.length();
      for (uint32_t i = 0; i < length; ++i) {
        if (rng.Bernoulli(0.5)) {
          state.theta.Update(i, rng.UniformDouble(1e-4, 3.0), config.alpha);
        }
      }
    }

    const std::vector<double> weights = policy.SnapshotWeights(state);
    const std::vector<double> probabilities =
        Softmax(weights, config.softmax_temperature);
    ASSERT_EQ(probabilities.size(), pool_size);
    double sum = 0.0;
    for (const double p : probabilities) {
      EXPECT_GE(p, 0.0);
      EXPECT_LE(p, 1.0 + 1e-12);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9) << "trial " << trial;
  }
}

// Property: the policy's knowledge update matches the scalar EWMA reference
// theta[R] <- alpha * L + (1 - alpha) * theta[R] (with a first observation
// initializing the entry) over a long fuzzed (R, L) sequence.
TEST(RequestCentricPolicyPropertyTest, EwmaUpdateMatchesScalarReference) {
  const RequestCentricPolicy policy = MakePolicy();
  const PolicyConfig& config = policy.config();
  PolicyState state(config);
  const uint32_t length = state.theta.length();
  std::vector<double> reference(length, 0.0);

  Rng rng(0xe33a);
  for (int step = 0; step < 1000; ++step) {
    const uint64_t request_number = rng.UniformUint64(length);
    // Integral microseconds, so Duration round-trips exactly and the
    // reference sees the same sample value the policy does.
    const int64_t latency_us = rng.UniformInt(1, 5000000);
    policy.OnRequestComplete(state, request_number, Duration::Micros(latency_us));

    const double sample = static_cast<double>(latency_us) / 1e6;
    double& entry = reference[request_number];
    entry = entry == 0.0 ? sample : config.alpha * sample + (1 - config.alpha) * entry;

    ASSERT_DOUBLE_EQ(state.theta.At(request_number), entry) << "step " << step;
  }
  for (uint32_t i = 0; i < length; ++i) {
    EXPECT_DOUBLE_EQ(state.theta.At(i), reference[i]) << "theta[" << i << "]";
  }
}

}  // namespace
}  // namespace pronghorn
