#include "src/core/policy_state_store.h"

#include <gtest/gtest.h>

#include "src/store/fault_injection.h"

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 5;
  config.max_checkpoint_request = 20;
  return config;
}

PoolEntry Entry(uint64_t id, uint64_t request_number) {
  PoolEntry entry;
  entry.metadata.id = SnapshotId{id};
  entry.metadata.function = "f";
  entry.metadata.request_number = request_number;
  entry.object_key = "snapshots/f/" + std::to_string(id);
  return entry;
}

TEST(PolicyStateCodecTest, RoundTrip) {
  PolicyState state(TestConfig());
  state.theta.Update(3, 0.05, 0.3);
  ASSERT_TRUE(state.pool.Add(Entry(1, 3)).ok());

  const auto encoded = EncodePolicyState(state);
  auto decoded = DecodePolicyState(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, state);
}

TEST(PolicyStateCodecTest, RejectsBadVersion) {
  PolicyState state(TestConfig());
  auto encoded = EncodePolicyState(state);
  encoded[0] = 0xfe;  // Clobber the format version.
  EXPECT_EQ(DecodePolicyState(encoded).status().code(), StatusCode::kDataLoss);
}

TEST(PolicyStateCodecTest, RejectsTrailingBytes) {
  PolicyState state(TestConfig());
  auto encoded = EncodePolicyState(state);
  encoded.push_back(0x00);
  EXPECT_FALSE(DecodePolicyState(encoded).ok());
}

TEST(PolicyStateStoreTest, LoadFreshStateWhenAbsent) {
  InMemoryKvDatabase db;
  PolicyStateStore store(db, "fn", TestConfig());
  auto state = store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->theta.length(), TestConfig().WeightVectorLength());
  EXPECT_TRUE(state->pool.empty());
}

TEST(PolicyStateStoreTest, UpdatePersistsMutation) {
  InMemoryKvDatabase db;
  PolicyStateStore store(db, "fn", TestConfig());
  ASSERT_TRUE(store
                  .Update([](PolicyState& state) {
                    state.theta.Update(2, 0.5, 0.3);
                  })
                  .ok());
  auto state = store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_DOUBLE_EQ(state->theta.At(2), 0.5);
}

TEST(PolicyStateStoreTest, UpdatesAccumulate) {
  InMemoryKvDatabase db;
  PolicyStateStore store(db, "fn", TestConfig());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store
                    .Update([i](PolicyState& state) {
                      state.theta.Update(static_cast<uint64_t>(i), 0.1, 0.3);
                    })
                    .ok());
  }
  auto state = store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(state->theta.ExploredCount(), 10u);
}

TEST(PolicyStateStoreTest, FunctionsAreIsolated) {
  InMemoryKvDatabase db;
  PolicyStateStore store_a(db, "fn-a", TestConfig());
  PolicyStateStore store_b(db, "fn-b", TestConfig());
  ASSERT_TRUE(
      store_a.Update([](PolicyState& state) { state.theta.Update(1, 0.7, 0.3); }).ok());
  auto state_b = store_b.Load();
  ASSERT_TRUE(state_b.ok());
  EXPECT_EQ(state_b->theta.ExploredCount(), 0u);
}

TEST(PolicyStateStoreTest, CasRetryHandlesConcurrentWriter) {
  // Two stores over one database: each applies many increments to disjoint
  // theta entries; interleaved CAS retries must not lose updates.
  InMemoryKvDatabase db;
  PolicyStateStore store_a(db, "fn", TestConfig());
  PolicyStateStore store_b(db, "fn", TestConfig());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(
        store_a.Update([](PolicyState& state) { state.theta.Update(1, 0.1, 1.0); })
            .ok());
    ASSERT_TRUE(
        store_b.Update([](PolicyState& state) { state.theta.Update(2, 0.2, 1.0); })
            .ok());
  }
  auto state = store_a.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_DOUBLE_EQ(state->theta.At(1), 0.1);
  EXPECT_DOUBLE_EQ(state->theta.At(2), 0.2);
}

TEST(PolicyStateStoreTest, MutatorRerunsAgainstFreshStateOnConflict) {
  // Simulate a conflicting write landing between a reader's Load and CAS by
  // mutating through a second store inside the first mutation's first run.
  InMemoryKvDatabase db;
  PolicyStateStore store(db, "fn", TestConfig());
  PolicyStateStore rival(db, "fn", TestConfig());
  int runs = 0;
  ASSERT_TRUE(store
                  .Update([&](PolicyState& state) {
                    ++runs;
                    if (runs == 1) {
                      // Interleave a rival write -> our CAS must conflict.
                      ASSERT_TRUE(rival
                                      .Update([](PolicyState& s) {
                                        s.theta.Update(5, 0.9, 1.0);
                                      })
                                      .ok());
                    }
                    state.theta.Update(6, 0.4, 1.0);
                  })
                  .ok());
  EXPECT_EQ(runs, 2);  // First run conflicted, second committed.
  auto state = store.Load();
  ASSERT_TRUE(state.ok());
  EXPECT_DOUBLE_EQ(state->theta.At(5), 0.9);  // Rival update survived.
  EXPECT_DOUBLE_EQ(state->theta.At(6), 0.4);
  EXPECT_GE(db.accounting().cas_conflicts, 1u);
}

TEST(PolicyStateStoreTest, SnapshotIdsAreUniqueAndMonotonic) {
  InMemoryKvDatabase db;
  PolicyStateStore store(db, "fn", TestConfig());
  uint64_t previous = 0;
  for (int i = 0; i < 25; ++i) {
    auto id = store.AllocateSnapshotId();
    ASSERT_TRUE(id.ok());
    EXPECT_GT(id->value, previous);
    previous = id->value;
  }
}

TEST(PolicyStateStoreTest, IdSequencesArePerFunction) {
  InMemoryKvDatabase db;
  PolicyStateStore store_a(db, "fn-a", TestConfig());
  PolicyStateStore store_b(db, "fn-b", TestConfig());
  EXPECT_EQ(store_a.AllocateSnapshotId()->value, 1u);
  EXPECT_EQ(store_a.AllocateSnapshotId()->value, 2u);
  EXPECT_EQ(store_b.AllocateSnapshotId()->value, 1u);
}

TEST(PolicyStateStoreTest, CorruptBlobSurfacesDataLoss) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("policy/fn/state", {0x01, 0x02}).ok());
  PolicyStateStore store(db, "fn", TestConfig());
  EXPECT_FALSE(store.Load().ok());
}

TEST(PolicyStateCodecTest, RoundTripsRestoreFailureLedger) {
  // v2 of the blob format appends the restore-failure strike ledger.
  PolicyState state(TestConfig());
  state.theta.Update(3, 0.05, 0.3);
  ASSERT_TRUE(state.pool.Add(Entry(1, 3)).ok());
  state.restore_failures[1] = 2;
  state.restore_failures[9] = 1;

  const auto encoded = EncodePolicyState(state);
  auto decoded = DecodePolicyState(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(*decoded, state);
  EXPECT_EQ(decoded->restore_failures.size(), 2u);
  EXPECT_EQ(decoded->restore_failures.at(1), 2u);
  EXPECT_EQ(decoded->restore_failures.at(9), 1u);
}

TEST(PolicyStateStoreTest, StatsCountLoadsUpdatesAndCasAttempts) {
  InMemoryKvDatabase db;
  PolicyStateStore store(db, "fn", TestConfig());
  ASSERT_TRUE(store.Load().ok());
  ASSERT_TRUE(
      store.Update([](PolicyState& state) { state.theta.Update(1, 0.1, 0.3); }).ok());
  const StateStoreStats& stats = store.stats();
  // Update reads the versioned blob directly; only Load() counts as a load.
  EXPECT_EQ(stats.loads, 1u);
  EXPECT_EQ(stats.updates, 1u);
  EXPECT_EQ(stats.cas_attempts, 1u);
  EXPECT_EQ(stats.cas_conflicts, 0u);
  EXPECT_EQ(stats.transient_retries, 0u);
}

TEST(PolicyStateStoreTest, TransientFailuresRetryWithBackoffInSimulatedTime) {
  // A database-domain outage that ends mid-retry: the first attempts fail,
  // backoff advances the simulated clock past the window's end, and the
  // operation then succeeds without surfacing an error.
  SimClock clock;
  InMemoryKvDatabase inner;
  FaultPlan plan;
  FaultWindow window;
  window.domain = FaultDomain::kDatabase;
  window.start = TimePoint();
  window.end = TimePoint() + Duration::Millis(5);
  plan.windows.push_back(window);
  FaultyKvDatabase db(inner, plan, &clock);

  PolicyStateStore store(db, "fn", TestConfig(), &clock);
  ASSERT_TRUE(
      store.Update([](PolicyState& state) { state.theta.Update(1, 0.1, 0.3); }).ok());
  const StateStoreStats& stats = store.stats();
  EXPECT_GE(stats.transient_retries, 1u);
  EXPECT_GT(stats.total_backoff, Duration::Zero());
  EXPECT_EQ(clock.now(), TimePoint() + stats.total_backoff);
}

TEST(PolicyStateStoreTest, ExhaustedTransientRetriesSurfaceUnavailable) {
  // Under a permanent outage every retry burns out and the caller sees
  // kUnavailable (which the orchestrator turns into a degraded start).
  SimClock clock;
  InMemoryKvDatabase inner;
  FaultPlan plan;
  FaultWindow window;
  window.domain = FaultDomain::kDatabase;
  window.start = TimePoint();
  window.end = TimePoint() + Duration::Seconds(3600);
  plan.windows.push_back(window);
  FaultyKvDatabase db(inner, plan, &clock);

  StateStoreRetryPolicy retry;
  retry.max_transient_retries = 3;
  PolicyStateStore store(db, "fn", TestConfig(), &clock, retry);
  EXPECT_EQ(store.Load().status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(store.stats().transient_retries, 3u);
  EXPECT_GT(clock.now(), TimePoint());  // Backoff happened in simulated time.
}

}  // namespace
}  // namespace pronghorn
