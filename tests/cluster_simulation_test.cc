#include "src/platform/cluster_simulation.h"

#include <gtest/gtest.h>

#include "src/core/request_centric_policy.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  return config;
}

TEST(ClusterSimulationTest, ServesAllRequestsAcrossSlots) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.worker_slots = 4;
  options.exploring_slots = 1;
  options.seed = 2;
  ClusterSimulation cluster(Profile("DynamicHTML"), WorkloadRegistry::Default(),
                            *policy, **eviction, options);
  auto report = cluster.RunClosedLoop(400);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 400u);
  // With 4 balanced slots, both roles served requests.
  EXPECT_GT(report->exploring_latency.count(), 0u);
  EXPECT_GT(report->exploiting_latency.count(), 0u);
  EXPECT_EQ(report->exploring_latency.count() + report->exploiting_latency.count(),
            400u);
}

TEST(ClusterSimulationTest, OnlyExploringSlotsCheckpoint) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());

  SimOptions options;
  options.worker_slots = 4;
  options.exploring_slots = 0;  // Nobody explores: no snapshots ever.
  options.seed = 3;
  ClusterSimulation cluster(Profile("DynamicHTML"), WorkloadRegistry::Default(),
                            *policy, **eviction, options);
  auto report = cluster.RunClosedLoop(200);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->checkpoints, 0u);
  EXPECT_EQ(report->restores, 0u);  // Empty pool: all cold starts.
}

TEST(ClusterSimulationTest, ExploitersBenefitFromSharedPool) {
  // §5.3: non-exploring workers restore from the snapshots the exploring
  // subset publishes through the shared Database/Object Store.
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());

  SimOptions options;
  options.worker_slots = 4;
  options.exploring_slots = 1;
  options.seed = 4;
  ClusterSimulation cluster(Profile("BFS"), WorkloadRegistry::Default(), *policy,
                            **eviction, options);
  auto report = cluster.RunClosedLoop(600);
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->checkpoints, 0u);
  EXPECT_GT(report->restores, 0u);

  // Exploit slots restored snapshots they never created: restores far exceed
  // what one exploring slot's lifetimes could account for.
  auto state = cluster.LoadPolicyState();
  ASSERT_TRUE(state.ok());
  EXPECT_FALSE(state->pool.empty());

  // Exploiters' later requests run at elevated JIT maturity.
  uint64_t late_maturity = 0;
  uint64_t late_count = 0;
  for (size_t i = report->records.size() - 100; i < report->records.size(); ++i) {
    late_maturity += report->records[i].request_number;
    ++late_count;
  }
  EXPECT_GT(late_maturity / late_count, 10u);
}

TEST(ClusterSimulationTest, AmortizationReducesCheckpointCount) {
  // More exploit slots => fewer checkpoints for similar served volume.
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());

  uint64_t checkpoints_all_exploring = 0;
  uint64_t checkpoints_one_exploring = 0;
  for (uint32_t exploring : {4u, 1u}) {
    SimOptions options;
    options.worker_slots = 4;
    options.exploring_slots = exploring;
    options.seed = 5;
    ClusterSimulation cluster(Profile("MST"), WorkloadRegistry::Default(), *policy,
                              **eviction, options);
    auto report = cluster.RunClosedLoop(400);
    ASSERT_TRUE(report.ok());
    if (exploring == 4) {
      checkpoints_all_exploring = report->checkpoints;
    } else {
      checkpoints_one_exploring = report->checkpoints;
    }
  }
  EXPECT_LT(checkpoints_one_exploring, checkpoints_all_exploring / 2);
  EXPECT_GT(checkpoints_one_exploring, 0u);
}

TEST(ClusterSimulationTest, DeterministicForSeed) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.worker_slots = 3;
  options.exploring_slots = 2;
  options.seed = 6;

  std::vector<int64_t> first_run;
  for (int run = 0; run < 2; ++run) {
    ClusterSimulation cluster(Profile("Hash"), WorkloadRegistry::Default(), *policy,
                              **eviction, options);
    auto report = cluster.RunClosedLoop(150);
    ASSERT_TRUE(report.ok());
    if (run == 0) {
      for (const RequestRecord& record : report->records) {
        first_run.push_back(record.latency.ToMicros());
      }
    } else {
      ASSERT_EQ(report->records.size(), first_run.size());
      for (size_t i = 0; i < first_run.size(); ++i) {
        EXPECT_EQ(report->records[i].latency.ToMicros(), first_run[i]) << i;
      }
    }
  }
}

TEST(ClusterSimulationTest, ExploringSlotsClampedToWorkerSlots) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.worker_slots = 2;
  options.exploring_slots = 99;
  options.seed = 7;
  ClusterSimulation cluster(Profile("DFS"), WorkloadRegistry::Default(), *policy,
                            **eviction, options);
  auto report = cluster.RunClosedLoop(50);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->exploiting_latency.count(), 0u);  // Everyone explores.
}

}  // namespace
}  // namespace pronghorn
