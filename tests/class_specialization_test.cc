// Tests of the input-class specialization model (§6 "Workload and
// input-awareness"): optimized code speculates on the input class it was
// profiled against, and cross-class traffic trips the speculation guards.

#include <gtest/gtest.h>

#include "src/common/bytes.h"
#include "src/jit/runtime_process.h"

namespace pronghorn {
namespace {

WorkloadProfile SensitiveProfile(double sensitivity) {
  WorkloadProfile p;
  p.name = "ClassSensitive";
  p.family = RuntimeFamily::kPyPy;
  p.compute_base = Duration::Millis(50);
  p.converged_speedup = 3.0;
  p.convergence_requests = 200;
  p.hot_method_count = 12;
  p.baseline_speedup_fraction = 0.6;
  p.deopt_rate = 0.01;
  p.class_sensitivity = sensitivity;
  return p;
}

uint64_t DeoptsUnderTraffic(const WorkloadProfile& profile, double minority_share,
                            uint64_t seed) {
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, seed);
  Rng traffic(seed + 1000);
  // Warm up on class 0 only, then serve the mixed phase.
  for (uint64_t i = 0; i < 400; ++i) {
    process.Execute({i, 1.0, 0});
  }
  const uint64_t warm_deopts = process.total_deopts();
  for (uint64_t i = 0; i < 2000; ++i) {
    const uint32_t cls = traffic.Bernoulli(minority_share) ? 1u : 0u;
    process.Execute({400 + i, 1.0, cls});
  }
  return process.total_deopts() - warm_deopts;
}

TEST(ClassSpecializationTest, OptimizedCodeSpecializesToDominantClass) {
  const WorkloadProfile profile = SensitiveProfile(50.0);
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 1);
  for (uint64_t i = 0; i < 500; ++i) {
    process.Execute({i, 1.0, 3});
  }
  EXPECT_EQ(process.DominantInputClass(), 3u);
}

TEST(ClassSpecializationTest, DominantClassTracksMajority) {
  const WorkloadProfile profile = SensitiveProfile(50.0);
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 2);
  for (uint64_t i = 0; i < 30; ++i) {
    process.Execute({i, 1.0, 1});
  }
  for (uint64_t i = 0; i < 80; ++i) {
    process.Execute({100 + i, 1.0, 2});
  }
  EXPECT_EQ(process.DominantInputClass(), 2u);
}

TEST(ClassSpecializationTest, UnspecializedBeforeAnyRequest) {
  const WorkloadProfile profile = SensitiveProfile(50.0);
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 3);
  EXPECT_EQ(process.DominantInputClass(), MethodState::kUnspecialized);
}

TEST(ClassSpecializationTest, CrossClassTrafficCausesMoreDeopts) {
  const WorkloadProfile profile = SensitiveProfile(80.0);
  uint64_t uniform_total = 0;
  uint64_t mixed_total = 0;
  for (uint64_t seed = 0; seed < 5; ++seed) {
    uniform_total += DeoptsUnderTraffic(profile, /*minority_share=*/0.0, seed);
    mixed_total += DeoptsUnderTraffic(profile, /*minority_share=*/0.4, seed);
  }
  EXPECT_GT(mixed_total, uniform_total * 3);
}

TEST(ClassSpecializationTest, InsensitiveWorkloadsIgnoreClasses) {
  const WorkloadProfile profile = SensitiveProfile(0.0);
  uint64_t uniform_total = 0;
  uint64_t mixed_total = 0;
  for (uint64_t seed = 0; seed < 8; ++seed) {
    uniform_total += DeoptsUnderTraffic(profile, 0.0, seed);
    mixed_total += DeoptsUnderTraffic(profile, 0.4, seed);
  }
  // Without sensitivity the deopt processes are statistically identical.
  const double ratio = static_cast<double>(mixed_total + 1) /
                       static_cast<double>(uniform_total + 1);
  EXPECT_GT(ratio, 0.5);
  EXPECT_LT(ratio, 2.0);
}

TEST(ClassSpecializationTest, Table3ProfilesAreClassInsensitive) {
  // The paper's benchmarks do not model per-class code paths; the default
  // registry must keep the extension disabled so calibration is unaffected.
  for (const WorkloadProfile& p : WorkloadRegistry::Default().profiles()) {
    EXPECT_DOUBLE_EQ(p.class_sensitivity, 0.0) << p.name;
  }
}

TEST(ClassSpecializationTest, ClassCountsSurviveCheckpointRoundTrip) {
  const WorkloadProfile profile = SensitiveProfile(50.0);
  auto registry = WorkloadRegistry::Create({profile});
  ASSERT_TRUE(registry.ok());
  RuntimeProcess process =
      RuntimeProcess::ColdStart(*registry->Find("ClassSensitive").value(), 4);
  for (uint64_t i = 0; i < 120; ++i) {
    process.Execute({i, 1.0, i % 2 == 0 ? 5u : 1u});
  }
  ByteWriter writer;
  process.Serialize(writer);
  ByteReader reader(writer.data());
  auto restored = RuntimeProcess::Deserialize(reader, *registry);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_TRUE(process.StateEquals(*restored));
  EXPECT_EQ(restored->DominantInputClass(), process.DominantInputClass());
}

TEST(ClassSpecializationTest, OutOfRangeClassClamped) {
  const WorkloadProfile profile = SensitiveProfile(50.0);
  RuntimeProcess process = RuntimeProcess::ColdStart(profile, 5);
  for (uint64_t i = 0; i < 50; ++i) {
    process.Execute({i, 1.0, 1000000});  // Clamps to kMaxInputClasses - 1.
  }
  EXPECT_EQ(process.DominantInputClass(), RuntimeProcess::kMaxInputClasses - 1);
}

}  // namespace
}  // namespace pronghorn
