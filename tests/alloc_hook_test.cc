// Proves the steady-state decision path performs zero heap allocations.
//
// This TU replaces the global operator new/delete with counting wrappers (a
// replaceable-function override, standard-sanctioned) and asserts that once
// the policy's thread-local arena and caches are warm, OnWorkerStart,
// OnRequestComplete, and OnSnapshotAdded-without-eviction allocate nothing.
// A regression here silently re-introduces malloc into the per-decision hot
// loop, which is exactly the cost class this PR removed.
//
// Under sanitizers the runtime interposes its own allocator and the
// replacement functions below may not see every allocation (or may see the
// sanitizer's own), so the zero-allocation assertions are skipped there; the
// functional assertions still run.

#include <atomic>
#include <cstdlib>
#include <new>
#include <string>

#include <gtest/gtest.h>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/core/request_centric_policy.h"

namespace {

std::atomic<long> g_live_counting{0};
std::atomic<unsigned long> g_allocation_count{0};

struct CountingScope {
  CountingScope() { g_live_counting.fetch_add(1, std::memory_order_relaxed); }
  ~CountingScope() { g_live_counting.fetch_sub(1, std::memory_order_relaxed); }
};

void NoteAllocation() {
  if (g_live_counting.load(std::memory_order_relaxed) > 0) {
    g_allocation_count.fetch_add(1, std::memory_order_relaxed);
  }
}

unsigned long TakeAllocationCount() {
  return g_allocation_count.exchange(0, std::memory_order_relaxed);
}

#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
constexpr bool kCountingReliable = false;
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer) || \
    __has_feature(memory_sanitizer)
constexpr bool kCountingReliable = false;
#else
constexpr bool kCountingReliable = true;
#endif
#else
constexpr bool kCountingReliable = true;
#endif

}  // namespace

// Replaceable global allocation functions (all eight forms funnel here).
void* operator new(std::size_t size) {
  NoteAllocation();
  void* p = std::malloc(size == 0 ? 1 : size);
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new(std::size_t size, std::align_val_t alignment) {
  NoteAllocation();
  void* p = std::aligned_alloc(static_cast<std::size_t>(alignment),
                               (size + static_cast<std::size_t>(alignment) - 1) /
                                   static_cast<std::size_t>(alignment) *
                                   static_cast<std::size_t>(alignment));
  if (p == nullptr) {
    throw std::bad_alloc();
  }
  return p;
}

void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new[](std::size_t size, std::align_val_t alignment) {
  return ::operator new(size, alignment);
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 10;
  config.pool_capacity = 6;
  config.max_checkpoint_request = 50;
  config.alpha = 0.3;
  config.retain_top_percent = 40.0;
  config.retain_random_percent = 10.0;
  return config;
}

PoolEntry Entry(uint64_t id, uint64_t request_number) {
  PoolEntry entry;
  entry.metadata.id = SnapshotId{id};
  entry.metadata.function = "f";
  entry.metadata.request_number = request_number;
  entry.object_key = "snapshots/f/" + std::to_string(id);
  return entry;
}

TEST(AllocHookTest, SteadyStateDecisionPathIsAllocationFree) {
  auto policy_or = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy_or.ok());
  const RequestCentricPolicy policy = *std::move(policy_or);

  PolicyState state(policy.config());
  Rng rng(42);

  // Populate a realistic warm state: learned latencies plus a part-full pool
  // (so OnSnapshotAdded stays under capacity and must not evict).
  for (uint64_t request = 0; request < 50; ++request) {
    state.theta.Update(request, 0.002 + 0.0001 * static_cast<double>(request),
                       0.3);
  }
  for (uint64_t id = 1; id <= 4; ++id) {
    ASSERT_TRUE(state.pool.Add(Entry(id, id * 7)).ok());
  }

  // Warm every lazily-built structure: the policy's thread-local decision
  // arena, the WeightVector inverse/lifetime caches, pool scratch.
  for (int i = 0; i < 16; ++i) {
    const StartDecision decision = policy.OnWorkerStart(state, rng);
    (void)decision;
    policy.OnRequestComplete(state, static_cast<uint64_t>(i % 50),
                             Duration::Micros(1500));
  }

  // Steady state: every decision call must be allocation-free.
  unsigned long start_allocs = 0;
  unsigned long complete_allocs = 0;
  {
    CountingScope scope;
    TakeAllocationCount();
    for (int i = 0; i < 64; ++i) {
      const StartDecision decision = policy.OnWorkerStart(state, rng);
      ASSERT_TRUE(decision.checkpoint_at_request.has_value());
    }
    start_allocs = TakeAllocationCount();
    for (int i = 0; i < 64; ++i) {
      policy.OnRequestComplete(state, static_cast<uint64_t>(i % 50),
                               Duration::Micros(1200 + i));
    }
    complete_allocs = TakeAllocationCount();
  }

  if (kCountingReliable) {
    EXPECT_EQ(start_allocs, 0u)
        << "OnWorkerStart allocated on the steady-state path";
    EXPECT_EQ(complete_allocs, 0u)
        << "OnRequestComplete allocated on the steady-state path";
  } else {
    GTEST_LOG_(INFO) << "sanitizer build: allocation counts not asserted "
                     << "(start=" << start_allocs
                     << " complete=" << complete_allocs << ")";
  }
}

TEST(AllocHookTest, CountingHooksObserveOrdinaryAllocations) {
  // Sanity-check the instrument itself: an std::vector growth must register
  // (otherwise the zero assertions above would be vacuous).
  if (!kCountingReliable) {
    GTEST_SKIP() << "sanitizer build interposes the allocator";
  }
  CountingScope scope;
  TakeAllocationCount();
  std::vector<int>* v = new std::vector<int>();
  v->resize(1000);
  const unsigned long count = TakeAllocationCount();
  delete v;
  EXPECT_GE(count, 2u);  // the vector object + its buffer
}

}  // namespace
}  // namespace pronghorn
