#include "src/store/chunker.h"

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"

namespace pronghorn {
namespace {

std::vector<uint8_t> RandomBytes(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint8_t> bytes(n);
  for (uint8_t& b : bytes) {
    b = static_cast<uint8_t>(rng.NextUint64());
  }
  return bytes;
}

// Concatenating the spans in order must reproduce the input byte-for-byte,
// and every span's key must be the content hash of its slice.
void ExpectTilesExactly(const std::vector<uint8_t>& input,
                        const std::vector<ChunkSpan>& spans) {
  uint64_t offset = 0;
  for (const ChunkSpan& span : spans) {
    ASSERT_EQ(span.offset, offset);
    ASSERT_LE(span.offset + span.size, input.size());
    const std::span<const uint8_t> slice(input.data() + span.offset, span.size);
    EXPECT_EQ(span.key, HashChunk(slice));
    offset += span.size;
  }
  EXPECT_EQ(offset, input.size());
}

TEST(ChunkerTest, FixedTilesInputExactly) {
  const auto input = RandomBytes(100000, 1);
  ChunkerOptions options;
  options.chunk_size = 4096;
  const auto spans = SplitChunks(input, options);
  ExpectTilesExactly(input, spans);
  // Every chunk but the last is exactly chunk_size.
  for (size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_EQ(spans[i].size, options.chunk_size);
  }
  EXPECT_EQ(spans.size(), (input.size() + 4095) / 4096);
}

TEST(ChunkerTest, EmptyInputYieldsNoChunks) {
  ChunkerOptions options;
  EXPECT_TRUE(SplitChunks({}, options).empty());
  options.cdc = true;
  EXPECT_TRUE(SplitChunks({}, options).empty());
}

TEST(ChunkerTest, HashIsPureAndCollisionResistantInPractice) {
  const auto a = RandomBytes(4096, 7);
  auto b = a;
  EXPECT_EQ(HashChunk(a), HashChunk(b));
  b[1000] ^= 1;
  EXPECT_NE(HashChunk(a), HashChunk(b));
  // Distinct random pages never collide at this scale.
  std::set<ChunkKey> keys;
  for (uint64_t seed = 0; seed < 500; ++seed) {
    keys.insert(HashChunk(RandomBytes(4096, seed)));
  }
  EXPECT_EQ(keys.size(), 500u);
}

TEST(ChunkerTest, CdcTilesInputAndRespectsBounds) {
  const auto input = RandomBytes(300000, 3);
  ChunkerOptions options;
  options.cdc = true;
  options.chunk_size = 4096;
  options.min_size = 1024;
  options.max_size = 16384;
  const auto spans = SplitChunks(input, options);
  ExpectTilesExactly(input, spans);
  for (size_t i = 0; i + 1 < spans.size(); ++i) {
    EXPECT_GE(spans[i].size, options.min_size);
    EXPECT_LE(spans[i].size, options.max_size);
  }
  // The average should land in the window the geometry allows.
  const double avg =
      static_cast<double>(input.size()) / static_cast<double>(spans.size());
  EXPECT_GT(avg, 1024.0);
  EXPECT_LT(avg, 16384.0);
}

TEST(ChunkerTest, CdcBoundariesSurviveInsertion) {
  const auto base = RandomBytes(200000, 5);
  // Insert 100 bytes at the front: every fixed-size boundary after the
  // insertion shifts, but content-defined cuts resynchronize.
  std::vector<uint8_t> shifted = RandomBytes(100, 6);
  shifted.insert(shifted.end(), base.begin(), base.end());

  ChunkerOptions options;
  options.cdc = true;
  const auto base_spans = SplitChunks(base, options);
  const auto shifted_spans = SplitChunks(shifted, options);

  std::set<ChunkKey> base_keys;
  for (const ChunkSpan& span : base_spans) {
    base_keys.insert(span.key);
  }
  size_t shared = 0;
  for (const ChunkSpan& span : shifted_spans) {
    shared += base_keys.count(span.key);
  }
  // Most of the shifted file's chunks are bit-identical to base chunks.
  EXPECT_GT(shared * 2, shifted_spans.size());

  // Fixed-size chunking shares (essentially) nothing after the shift —
  // the contrast that motivates CDC delta encoding.
  options.cdc = false;
  const auto fixed_base = SplitChunks(base, options);
  const auto fixed_shifted = SplitChunks(shifted, options);
  std::set<ChunkKey> fixed_keys;
  for (const ChunkSpan& span : fixed_base) {
    fixed_keys.insert(span.key);
  }
  size_t fixed_shared = 0;
  for (const ChunkSpan& span : fixed_shifted) {
    fixed_shared += fixed_keys.count(span.key);
  }
  EXPECT_LT(fixed_shared * 10, fixed_shifted.size());
}

TEST(ChunkerTest, DeterministicAcrossCalls) {
  const auto input = RandomBytes(50000, 9);
  ChunkerOptions options;
  options.cdc = true;
  const auto a = SplitChunks(input, options);
  const auto b = SplitChunks(input, options);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].key, b[i].key);
    EXPECT_EQ(a[i].offset, b[i].offset);
    EXPECT_EQ(a[i].size, b[i].size);
  }
}

}  // namespace
}  // namespace pronghorn
