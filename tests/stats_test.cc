#include "src/common/stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "src/common/rng.h"

namespace pronghorn {
namespace {

TEST(OnlineStatsTest, Empty) {
  OnlineStats stats;
  EXPECT_EQ(stats.count(), 0u);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
}

TEST(OnlineStatsTest, SingleValue) {
  OnlineStats stats;
  stats.Add(7.0);
  EXPECT_EQ(stats.count(), 1u);
  EXPECT_DOUBLE_EQ(stats.mean(), 7.0);
  EXPECT_DOUBLE_EQ(stats.variance(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), 7.0);
  EXPECT_DOUBLE_EQ(stats.max(), 7.0);
}

TEST(OnlineStatsTest, MatchesBatchComputation) {
  const std::vector<double> values = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  OnlineStats stats;
  for (double v : values) {
    stats.Add(v);
  }
  EXPECT_DOUBLE_EQ(stats.mean(), 5.0);
  // Sample variance with n-1 = 7: sum of squared deviations is 32.
  EXPECT_NEAR(stats.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(stats.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
  EXPECT_DOUBLE_EQ(stats.min(), 2.0);
  EXPECT_DOUBLE_EQ(stats.max(), 9.0);
}

TEST(OnlineStatsTest, NegativeValues) {
  OnlineStats stats;
  stats.Add(-5.0);
  stats.Add(5.0);
  EXPECT_DOUBLE_EQ(stats.mean(), 0.0);
  EXPECT_DOUBLE_EQ(stats.min(), -5.0);
}

TEST(PercentileTest, Empty) { EXPECT_DOUBLE_EQ(Percentile({}, 50.0), 0.0); }

TEST(PercentileTest, MedianOfOddCount) {
  const std::vector<double> v = {3.0, 1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.0);
}

TEST(PercentileTest, InterpolatesBetweenRanks) {
  const std::vector<double> v = {10.0, 20.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 15.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 25.0), 12.5);
}

TEST(PercentileTest, Extremes) {
  const std::vector<double> v = {5.0, 1.0, 9.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 9.0);
}

TEST(PercentileTest, OutOfRangeQClamped) {
  const std::vector<double> v = {1.0, 2.0};
  EXPECT_DOUBLE_EQ(Percentile(v, -10.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 110.0), 2.0);
}

TEST(DistributionSummaryTest, QuantilesOnKnownData) {
  DistributionSummary summary;
  for (int i = 1; i <= 100; ++i) {
    summary.Add(static_cast<double>(i));
  }
  EXPECT_EQ(summary.count(), 100u);
  EXPECT_NEAR(summary.Median(), 50.5, 1e-9);
  EXPECT_NEAR(summary.Quantile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(summary.Min(), 1.0);
  EXPECT_DOUBLE_EQ(summary.Max(), 100.0);
  EXPECT_DOUBLE_EQ(summary.Mean(), 50.5);
}

TEST(DistributionSummaryTest, AddAllMatchesAdd) {
  const std::vector<double> values = {3.0, 1.0, 4.0, 1.0, 5.0};
  DistributionSummary a;
  DistributionSummary b;
  for (double v : values) {
    a.Add(v);
  }
  b.AddAll(values);
  EXPECT_DOUBLE_EQ(a.Median(), b.Median());
  EXPECT_EQ(a.count(), b.count());
}

TEST(DistributionSummaryTest, CdfIsMonotone) {
  DistributionSummary summary;
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    summary.Add(rng.LogNormal(0.0, 1.0));
  }
  const auto cdf = summary.Cdf(50);
  ASSERT_EQ(cdf.size(), 50u);
  for (size_t i = 1; i < cdf.size(); ++i) {
    EXPECT_GE(cdf[i].value, cdf[i - 1].value);
    EXPECT_GT(cdf[i].probability, cdf[i - 1].probability);
  }
  EXPECT_DOUBLE_EQ(cdf.back().probability, 1.0);
  EXPECT_DOUBLE_EQ(cdf.back().value, summary.Max());
}

TEST(DistributionSummaryTest, CdfOfEmptyIsEmpty) {
  DistributionSummary summary;
  EXPECT_TRUE(summary.Cdf(10).empty());
}

TEST(DistributionSummaryTest, QuantileAfterInterleavedAdds) {
  DistributionSummary summary;
  summary.Add(10.0);
  EXPECT_DOUBLE_EQ(summary.Median(), 10.0);
  summary.Add(20.0);  // Must invalidate the sorted cache.
  EXPECT_DOUBLE_EQ(summary.Median(), 15.0);
}

TEST(LogHistogramTest, BucketsCoverRange) {
  LogHistogram hist(1.0, 4.0, 3);  // Decades: [10,100), [100,1000), [1000,10000).
  hist.Add(50.0);
  hist.Add(500.0);
  hist.Add(5000.0);
  hist.Add(5.0);       // Underflow.
  hist.Add(50000.0);   // Overflow.
  hist.Add(0.0);       // Non-positive -> underflow.
  EXPECT_EQ(hist.total(), 6u);
  const auto& buckets = hist.buckets();
  ASSERT_EQ(buckets.size(), 5u);
  EXPECT_EQ(buckets[0], 2u);  // Underflow.
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 1u);
  EXPECT_EQ(buckets[4], 1u);  // Overflow.
}

TEST(LogHistogramTest, BucketLowerBounds) {
  LogHistogram hist(1.0, 4.0, 3);
  EXPECT_NEAR(hist.BucketLowerBound(0), 10.0, 1e-9);
  EXPECT_NEAR(hist.BucketLowerBound(1), 100.0, 1e-9);
  EXPECT_NEAR(hist.BucketLowerBound(2), 1000.0, 1e-9);
}

TEST(LogHistogramTest, BoundaryValuesLandInCorrectBucket) {
  LogHistogram hist(0.0, 2.0, 2);  // [1,10), [10,100).
  hist.Add(1.0);
  hist.Add(10.0);
  hist.Add(99.999);
  hist.Add(100.0);  // Exactly the upper edge -> overflow.
  const auto& buckets = hist.buckets();
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 2u);
  EXPECT_EQ(buckets[3], 1u);
}

TEST(LogHistogramTest, AsciiArtNonEmpty) {
  LogHistogram hist(0.0, 3.0, 30);
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    hist.Add(rng.LogNormal(3.0, 0.8));
  }
  const std::string art = hist.ToAsciiArt(40);
  EXPECT_EQ(art.size(), 40u);
  EXPECT_NE(art.find_first_not_of(' '), std::string::npos);
}

TEST(LogHistogramTest, EmptyAscii) {
  LogHistogram hist(0.0, 3.0, 30);
  EXPECT_EQ(hist.ToAsciiArt(), "(empty)");
}

}  // namespace
}  // namespace pronghorn
