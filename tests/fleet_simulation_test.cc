// Golden determinism tests for the sharded fleet simulation: the merged
// fleet report must be bit-identical whatever the thread count and whatever
// order deployments were registered or shards finished in. Bitwise equality
// is asserted via CRC32 over the canonical ClusterReport serialization.

#include "src/platform/fleet_simulation.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <set>
#include <vector>

#include "src/core/request_centric_policy.h"
#include "src/platform/report_io.h"

namespace pronghorn {
namespace {

constexpr uint64_t kSeed = 42;
constexpr size_t kFunctions = 6;
constexpr uint64_t kRequestsPerFunction = 120;

PolicyConfig SmallConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 6;
  config.max_checkpoint_request = 30;
  return config;
}

RequestCentricPolicy MakePolicy() {
  auto policy = RequestCentricPolicy::Create(SmallConfig());
  EXPECT_TRUE(policy.ok());
  return *std::move(policy);
}

std::vector<const WorkloadProfile*> TestProfiles() {
  const auto evaluation = WorkloadRegistry::Default().EvaluationSet();
  std::vector<const WorkloadProfile*> profiles;
  for (size_t i = 0; i < kFunctions; ++i) {
    profiles.push_back(evaluation[i % evaluation.size()]);
  }
  return profiles;
}

FleetReport MustRun(const OrchestrationPolicy& policy, uint32_t threads,
                    bool reverse_registration = false,
                    FleetEvictionSpec eviction = FleetEvictionSpec{},
                    FaultPlan faults = FaultPlan{}) {
  SimOptions options;
  options.seed = kSeed;
  options.threads = threads;
  options.eviction = eviction;
  options.faults = faults;
  FleetSimulation fleet(WorkloadRegistry::Default(), options);

  const auto profiles = TestProfiles();
  std::vector<size_t> order(profiles.size());
  for (size_t i = 0; i < order.size(); ++i) {
    order[i] = reverse_registration ? order.size() - 1 - i : i;
  }
  for (const size_t i : order) {
    FleetFunctionSpec spec;
    spec.name = "fn" + std::to_string(i) + "-" + profiles[i]->name;
    spec.profile = profiles[i];
    spec.policy = &policy;
    spec.requests = kRequestsPerFunction;
    spec.worker_slots = 3;
    spec.exploring_slots = 1;
    EXPECT_TRUE(fleet.AddFunction(std::move(spec)).ok());
  }
  auto report = fleet.Run();
  EXPECT_TRUE(report.ok()) << report.status().ToString();
  return *std::move(report);
}

TEST(FleetSimulationTest, MergedReportBitIdenticalAcrossThreadCounts) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport one = MustRun(policy, 1);
  const FleetReport two = MustRun(policy, 2);
  const FleetReport eight = MustRun(policy, 8);

  // The headline guarantee: one CRC32 over every serialized ClusterReport.
  EXPECT_EQ(one.Digest(), two.Digest());
  EXPECT_EQ(one.Digest(), eight.Digest());

  // And the per-function summaries behind it, function by function.
  ASSERT_EQ(one.per_function.size(), kFunctions);
  ASSERT_EQ(eight.per_function.size(), kFunctions);
  for (size_t i = 0; i < kFunctions; ++i) {
    const auto& [name_a, report_a] = one.per_function[i];
    const auto& [name_b, report_b] = eight.per_function[i];
    EXPECT_EQ(name_a, name_b);
    EXPECT_EQ(ClusterReportCrc32(report_a), ClusterReportCrc32(report_b));
    EXPECT_EQ(report_a.records.size(), report_b.records.size());
    EXPECT_EQ(report_a.checkpoints, report_b.checkpoints);
    EXPECT_EQ(report_a.restores, report_b.restores);
    EXPECT_EQ(report_a.LatencySummary().Median(), report_b.LatencySummary().Median());
  }

  // Fleet-level aggregates are derived from the same bytes.
  EXPECT_EQ(one.fleet_latency.count(), eight.fleet_latency.count());
  EXPECT_EQ(one.fleet_latency.Quantile(50), eight.fleet_latency.Quantile(50));
  EXPECT_EQ(one.checkpoints, eight.checkpoints);
  EXPECT_EQ(one.database.reads, eight.database.reads);
  EXPECT_EQ(one.object_store.network_bytes_uploaded,
            eight.object_store.network_bytes_uploaded);
}

TEST(FleetSimulationTest, RegistrationOrderDoesNotChangeTheMergedReport) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport forward = MustRun(policy, 4, /*reverse_registration=*/false);
  const FleetReport reversed = MustRun(policy, 4, /*reverse_registration=*/true);
  EXPECT_EQ(forward.Digest(), reversed.Digest());
}

TEST(FleetSimulationTest, GeometricEvictionStaysDeterministicAcrossThreads) {
  // Geometric eviction draws from hidden RNG state; the fleet instantiates
  // one model per function from the function seed, so thread scheduling must
  // not leak into the draw sequences.
  const RequestCentricPolicy policy = MakePolicy();
  FleetEvictionSpec eviction;
  eviction.kind = FleetEvictionSpec::Kind::kGeometric;
  eviction.mean_requests = 4.0;
  const FleetReport one = MustRun(policy, 1, false, eviction);
  const FleetReport four = MustRun(policy, 4, false, eviction);
  EXPECT_EQ(one.Digest(), four.Digest());
}

TEST(FleetSimulationTest, FaultPlanStaysBitIdenticalAcrossThreadCounts) {
  // The chaos layer must not break the fleet's determinism guarantee: fault
  // draws come from per-function scoped seeds and backoff jitter from the
  // per-orchestrator Rng, so thread scheduling cannot leak into them. The
  // digest covers the merged FaultRecoveryStats, so this also pins the
  // recovery counters, not just the latency records.
  const RequestCentricPolicy policy = MakePolicy();
  FaultPlan faults;
  faults.get_failure_rate = 0.10;
  faults.put_failure_rate = 0.10;
  faults.delete_failure_rate = 0.10;
  faults.metadata_failure_rate = 0.10;
  faults.corruption_rate = 0.02;
  const FleetReport one = MustRun(policy, 1, false, FleetEvictionSpec{}, faults);
  const FleetReport two = MustRun(policy, 2, false, FleetEvictionSpec{}, faults);
  const FleetReport eight = MustRun(policy, 8, false, FleetEvictionSpec{}, faults);

  // Faults really fired (otherwise this test is vacuous)...
  EXPECT_GT(one.faults.store_faults + one.faults.db_faults, 0u);
  // ...and the merged report is byte-identical whatever the thread count.
  EXPECT_EQ(one.Digest(), two.Digest());
  EXPECT_EQ(one.Digest(), eight.Digest());

  // A fault plan must also change behavior relative to the healthy fleet.
  const FleetReport healthy = MustRun(policy, 2);
  EXPECT_NE(one.Digest(), healthy.Digest());
  EXPECT_EQ(healthy.faults.store_faults + healthy.faults.db_faults, 0u);
}

TEST(FleetSimulationTest, FleetCountersAreSumsOfPerFunctionCounters) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport report = MustRun(policy, 2);
  uint64_t lifetimes = 0, checkpoints = 0, restores = 0, cold = 0, records = 0;
  uint64_t kv_reads = 0;
  for (const auto& [name, cluster] : report.per_function) {
    lifetimes += cluster.worker_lifetimes;
    checkpoints += cluster.checkpoints;
    restores += cluster.restores;
    cold += cluster.cold_starts;
    records += cluster.records.size();
    kv_reads += cluster.database.reads;
  }
  EXPECT_EQ(report.worker_lifetimes, lifetimes);
  EXPECT_EQ(report.checkpoints, checkpoints);
  EXPECT_EQ(report.restores, restores);
  EXPECT_EQ(report.cold_starts, cold);
  EXPECT_EQ(report.fleet_latency.count(), records);
  EXPECT_EQ(report.fleet_latency.count(), kFunctions * kRequestsPerFunction);
  EXPECT_EQ(report.database.reads, kv_reads);
}

TEST(FleetSimulationTest, PerFunctionResultsSortedByNameAndFindable) {
  const RequestCentricPolicy policy = MakePolicy();
  const FleetReport report = MustRun(policy, 2);
  ASSERT_EQ(report.per_function.size(), kFunctions);
  EXPECT_TRUE(std::is_sorted(
      report.per_function.begin(), report.per_function.end(),
      [](const auto& a, const auto& b) { return a.function < b.function; }));
  const auto profiles = TestProfiles();
  const std::string name = "fn0-" + profiles[0]->name;
  ASSERT_NE(report.Find(name), nullptr);
  EXPECT_EQ(report.Find(name)->records.size(), kRequestsPerFunction);
  EXPECT_EQ(report.Find("no-such-deployment"), nullptr);
}

TEST(FleetSimulationTest, FunctionSeedDependsOnSeedAndNameOnly) {
  EXPECT_EQ(FleetSimulation::FunctionSeed(1, "alpha"),
            FleetSimulation::FunctionSeed(1, "alpha"));
  EXPECT_NE(FleetSimulation::FunctionSeed(1, "alpha"),
            FleetSimulation::FunctionSeed(1, "beta"));
  EXPECT_NE(FleetSimulation::FunctionSeed(1, "alpha"),
            FleetSimulation::FunctionSeed(2, "alpha"));
}

TEST(FleetSimulationTest, RejectsInvalidDeployments) {
  const RequestCentricPolicy policy = MakePolicy();
  const auto profiles = TestProfiles();
  FleetSimulation fleet(WorkloadRegistry::Default(), SimOptions{});

  FleetFunctionSpec good;
  good.name = "fn";
  good.profile = profiles[0];
  good.policy = &policy;
  EXPECT_TRUE(fleet.AddFunction(good).ok());
  EXPECT_EQ(fleet.AddFunction(good).code(), StatusCode::kAlreadyExists);

  FleetFunctionSpec unnamed = good;
  unnamed.name.clear();
  EXPECT_EQ(fleet.AddFunction(unnamed).code(), StatusCode::kInvalidArgument);

  FleetFunctionSpec no_profile = good;
  no_profile.name = "fn2";
  no_profile.profile = nullptr;
  EXPECT_EQ(fleet.AddFunction(no_profile).code(), StatusCode::kInvalidArgument);

  FleetFunctionSpec no_requests = good;
  no_requests.name = "fn3";
  no_requests.requests = 0;
  EXPECT_EQ(fleet.AddFunction(no_requests).code(), StatusCode::kInvalidArgument);
}

TEST(FleetSimulationTest, EmptyFleetFailsToRun) {
  FleetSimulation fleet(WorkloadRegistry::Default(), SimOptions{});
  EXPECT_EQ(fleet.Run().status().code(), StatusCode::kFailedPrecondition);
}

TEST(FleetSimulationTest, DistinctSeedsProduceDistinctFleets) {
  const RequestCentricPolicy policy = MakePolicy();
  SimOptions options_a;
  options_a.seed = 7;
  SimOptions options_b;
  options_b.seed = 8;
  std::set<uint32_t> digests;
  for (const SimOptions& options : {options_a, options_b}) {
    FleetSimulation fleet(WorkloadRegistry::Default(), options);
    FleetFunctionSpec spec;
    spec.name = "fn";
    spec.profile = TestProfiles()[0];
    spec.policy = &policy;
    spec.requests = 60;
    ASSERT_TRUE(fleet.AddFunction(std::move(spec)).ok());
    auto report = fleet.Run();
    ASSERT_TRUE(report.ok());
    digests.insert(report->Digest());
  }
  EXPECT_EQ(digests.size(), 2u);
}

}  // namespace
}  // namespace pronghorn
