#include "src/checkpoint/snapshot.h"

#include <gtest/gtest.h>

#include "src/common/crc32.h"
#include "src/common/rng.h"

namespace pronghorn {
namespace {

SnapshotImage MakeImage() {
  SnapshotMetadata metadata;
  metadata.id = SnapshotId{42};
  metadata.function = "DynamicHTML";
  metadata.request_number = 87;
  metadata.logical_size_bytes = 54 * 1024 * 1024;
  metadata.created_at = TimePoint::FromMicros(123456789);
  std::vector<uint8_t> payload = {1, 2, 3, 4, 5, 0xff, 0x00, 0x7f};
  return SnapshotImage(std::move(metadata), std::move(payload));
}

TEST(SnapshotImageTest, EncodeDecodeRoundTrip) {
  const SnapshotImage image = MakeImage();
  const std::vector<uint8_t> encoded = image.Encode();
  auto decoded = SnapshotImage::Decode(encoded);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->metadata(), image.metadata());
  EXPECT_EQ(decoded->payload(), image.payload());
}

TEST(SnapshotImageTest, DecodeAcceptsVersion1Frames) {
  // kVersion 2 widened embedded counters to 64-bit without changing the wire
  // layout; v1 images (pre-widening) must keep decoding. Rewrite the version
  // byte of a fresh frame to 1 and fix up the CRC trailer.
  std::vector<uint8_t> frame = MakeImage().Encode();
  ASSERT_GT(frame.size(), 9u);
  frame[4] = 1;  // Version byte sits right after the 4-byte magic.
  const std::span<const uint8_t> body(frame.data(), frame.size() - 4);
  const uint32_t crc = Crc32(body);
  frame[frame.size() - 4] = static_cast<uint8_t>(crc & 0xff);
  frame[frame.size() - 3] = static_cast<uint8_t>((crc >> 8) & 0xff);
  frame[frame.size() - 2] = static_cast<uint8_t>((crc >> 16) & 0xff);
  frame[frame.size() - 1] = static_cast<uint8_t>((crc >> 24) & 0xff);
  auto decoded = SnapshotImage::Decode(frame);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->metadata(), MakeImage().metadata());
}

TEST(SnapshotImageTest, DecodeRejectsFutureVersions) {
  std::vector<uint8_t> frame = MakeImage().Encode();
  frame[4] = 99;
  const std::span<const uint8_t> body(frame.data(), frame.size() - 4);
  const uint32_t crc = Crc32(body);
  frame[frame.size() - 4] = static_cast<uint8_t>(crc & 0xff);
  frame[frame.size() - 3] = static_cast<uint8_t>((crc >> 8) & 0xff);
  frame[frame.size() - 2] = static_cast<uint8_t>((crc >> 16) & 0xff);
  frame[frame.size() - 1] = static_cast<uint8_t>((crc >> 24) & 0xff);
  EXPECT_FALSE(SnapshotImage::Decode(frame).ok());
}

TEST(SnapshotImageTest, EmptyPayloadRoundTrip) {
  SnapshotMetadata metadata;
  metadata.id = SnapshotId{1};
  metadata.function = "f";
  const SnapshotImage image(metadata, {});
  auto decoded = SnapshotImage::Decode(image.Encode());
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->payload().empty());
}

TEST(SnapshotImageTest, EveryByteFlipIsDetected) {
  std::vector<uint8_t> encoded = MakeImage().Encode();
  for (size_t i = 0; i < encoded.size(); ++i) {
    encoded[i] ^= 0x5a;
    EXPECT_FALSE(SnapshotImage::Decode(encoded).ok()) << "flip at byte " << i;
    encoded[i] ^= 0x5a;
  }
  // Sanity: untouched image still decodes.
  EXPECT_TRUE(SnapshotImage::Decode(encoded).ok());
}

TEST(SnapshotImageTest, TruncationIsDetected) {
  const std::vector<uint8_t> encoded = MakeImage().Encode();
  for (size_t keep : {size_t{0}, size_t{3}, size_t{10}, encoded.size() - 1}) {
    auto decoded =
        SnapshotImage::Decode(std::span<const uint8_t>(encoded.data(), keep));
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss) << "prefix " << keep;
  }
}

TEST(SnapshotImageTest, TrailingGarbageIsDetected) {
  std::vector<uint8_t> encoded = MakeImage().Encode();
  encoded.push_back(0x00);
  EXPECT_FALSE(SnapshotImage::Decode(encoded).ok());
}

TEST(SnapshotImageTest, ObjectKeyIsScopedByFunction) {
  const SnapshotImage image = MakeImage();
  EXPECT_EQ(image.ObjectKey(), "snapshots/DynamicHTML/42");
}

// Property: arbitrary byte soup never crashes the decoder and never decodes
// successfully (the CRC would have to collide on garbage).
class SnapshotDecodeFuzz : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotDecodeFuzz, RandomBytesRejectedCleanly) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    const size_t size = rng.UniformUint64(300);
    std::vector<uint8_t> bytes(size);
    for (uint8_t& b : bytes) {
      b = static_cast<uint8_t>(rng.UniformUint64(256));
    }
    auto decoded = SnapshotImage::Decode(bytes);
    EXPECT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.status().code(), StatusCode::kDataLoss);
  }
}

TEST_P(SnapshotDecodeFuzz, MutatedValidImagesRejectedOrEquivalent) {
  Rng rng(GetParam() + 1000);
  const std::vector<uint8_t> valid = MakeImage().Encode();
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> mutated = valid;
    const size_t flips = 1 + rng.UniformUint64(4);
    for (size_t f = 0; f < flips; ++f) {
      const size_t at = rng.UniformUint64(mutated.size());
      mutated[at] ^= static_cast<uint8_t>(1 + rng.UniformUint64(255));
    }
    auto decoded = SnapshotImage::Decode(mutated);
    if (decoded.ok()) {
      // Only possible if the flips cancelled out back to the original.
      EXPECT_EQ(mutated, valid);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotDecodeFuzz, ::testing::Values(1u, 2u, 3u, 4u));

TEST(SnapshotIdTest, Ordering) {
  EXPECT_LT(SnapshotId{1}, SnapshotId{2});
  EXPECT_EQ(SnapshotId{3}, SnapshotId{3});
}

}  // namespace
}  // namespace pronghorn
