// Bit-identity property tests for the vectorized math kernels.
//
// The SIMD/fast-path implementations in src/common/mathutil.cc and the
// incremental caches in WeightVector are only admissible because they produce
// the exact bits the naive scalar code produces. These tests pin that
// contract across random inputs, temperatures, and sizes, so a future "just
// use -ffast-math" or reassociated reduction shows up as a hard failure
// instead of a silent digest drift.

#include <algorithm>
#include <cmath>
#include <cstring>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/mathutil.h"
#include "src/common/rng.h"
#include "src/core/weight_vector.h"

namespace pronghorn {
namespace {

// Verbatim naive softmax: the pre-optimization reference the production
// SoftmaxInto must match bit-for-bit.
std::vector<double> SoftmaxReference(std::span<const double> logits,
                                     double temperature) {
  std::vector<double> out;
  if (logits.empty()) {
    return out;
  }
  if (temperature <= 0.0) {
    temperature = 1.0;
  }
  out.reserve(logits.size());
  double max_logit = logits[0];
  for (double v : logits) {
    max_logit = std::max(max_logit, v);
  }
  double total = 0.0;
  for (double v : logits) {
    const double e = std::exp((v - max_logit) / temperature);
    out.push_back(e);
    total += e;
  }
  for (double& p : out) {
    p /= total;
  }
  return out;
}

std::vector<double> RandomLogits(Rng& rng, size_t n, double lo, double hi) {
  std::vector<double> logits(n);
  for (double& v : logits) {
    v = rng.UniformDouble(lo, hi);
  }
  return logits;
}

void ExpectBitIdentical(std::span<const double> got,
                        std::span<const double> want, const char* what) {
  ASSERT_EQ(got.size(), want.size()) << what;
  for (size_t i = 0; i < got.size(); ++i) {
    // memcmp, not ==: bit-identity is the contract (and it catches -0.0 vs
    // 0.0 or NaN payload drift that operator== would miss).
    EXPECT_EQ(std::memcmp(&got[i], &want[i], sizeof(double)), 0)
        << what << " diverges at index " << i << ": got " << got[i]
        << " want " << want[i];
  }
}

TEST(VectorMathTest, SoftmaxBitIdenticalToReferenceAcrossSizes) {
  Rng rng(0x50f7aa);
  // 13 = snapshot pool capacity 12 + the cold-start candidate; 1..64 covers
  // every remainder of the 4-lane SIMD stride.
  for (size_t n : {size_t{1}, size_t{2}, size_t{3}, size_t{4}, size_t{5},
                   size_t{7}, size_t{8}, size_t{13}, size_t{16}, size_t{31},
                   size_t{64}, size_t{513}}) {
    for (int trial = 0; trial < 20; ++trial) {
      const std::vector<double> logits = RandomLogits(rng, n, -50.0, 50.0);
      const std::vector<double> want = SoftmaxReference(logits, 1.0);
      std::vector<double> got(n);
      SoftmaxInto(logits, 1.0, got);
      ExpectBitIdentical(got, want, "SoftmaxInto(T=1)");
      ExpectBitIdentical(Softmax(logits, 1.0), want, "Softmax(T=1)");
    }
  }
}

TEST(VectorMathTest, SoftmaxBitIdenticalAcrossTemperatures) {
  Rng rng(0xfeed5);
  // Includes 1.0 (the fast path that skips the division) and temperatures on
  // both sides of it; <= 0 exercises the clamp-to-1 rule.
  for (double temperature : {1.0, 0.25, 0.5, 2.0, 7.5, 100.0, 0.0, -3.0}) {
    for (int trial = 0; trial < 10; ++trial) {
      const size_t n = static_cast<size_t>(rng.UniformInt(1, 40));
      const std::vector<double> logits = RandomLogits(rng, n, -20.0, 20.0);
      const std::vector<double> want = SoftmaxReference(logits, temperature);
      std::vector<double> got(n);
      SoftmaxInto(logits, temperature, got);
      ExpectBitIdentical(got, want, "SoftmaxInto");
    }
  }
}

TEST(VectorMathTest, SoftmaxHandlesExtremeMagnitudes) {
  // Large spreads drive exp to 0/1 extremes; identical inputs hit exact
  // ties. Both must match the reference bits, not just be "close".
  const std::vector<std::vector<double>> cases = {
      {700.0, -700.0, 0.0},
      {1e8, 1e8, 1e8},
      {-1e8, -1e8 + 1.0},
      {0.0, -0.0, 0.0},
      {3.5},
  };
  for (const auto& logits : cases) {
    for (double temperature : {1.0, 0.5, 3.0}) {
      const std::vector<double> want = SoftmaxReference(logits, temperature);
      std::vector<double> got(logits.size());
      SoftmaxInto(logits, temperature, got);
      ExpectBitIdentical(got, want, "SoftmaxInto extremes");
    }
  }
}

TEST(VectorMathTest, MaxValueMatchesOrderedScan) {
  Rng rng(0xace);
  for (size_t n = 1; n <= 70; ++n) {
    const std::vector<double> values = RandomLogits(rng, n, -1e6, 1e6);
    const double want = *std::max_element(values.begin(), values.end());
    EXPECT_EQ(MaxValue(values), want) << "n=" << n;
  }
}

TEST(VectorMathTest, InverseWeightsIntoMatchesScalarFold) {
  Rng rng(0x1234);
  for (size_t n : {size_t{1}, size_t{3}, size_t{4}, size_t{6}, size_t{200},
                   size_t{1024}}) {
    for (double mu : {1e-6, 0.01, 1.0}) {
      std::vector<double> values(n);
      for (double& v : values) {
        // Mix unexplored zeros with realistic latencies.
        v = rng.UniformDouble() < 0.3 ? 0.0 : rng.UniformDouble(1e-4, 10.0);
      }
      std::vector<double> want(n);
      for (size_t i = 0; i < n; ++i) {
        want[i] = InverseWeight(values[i], mu);
      }
      std::vector<double> got(n);
      InverseWeightsInto(values, mu, got);
      ExpectBitIdentical(got, want, "InverseWeightsInto");
    }
  }
}

TEST(VectorMathTest, OrderedSumIsLeftToRight) {
  // A sum that is order-sensitive in IEEE-754: big + tiny + -big loses the
  // tiny exactly when folded left-to-right.
  const std::vector<double> values = {1e16, 1.0, -1e16};
  double want = 0.0;
  for (double v : values) {
    want += v;
  }
  EXPECT_EQ(OrderedSum(values), want);
  EXPECT_EQ(OrderedSum(values), 0.0);  // (1e16 + 1.0) == 1e16 in doubles.
}

// --- WeightVector cache vs naive fold -------------------------------------

// The naive recompute the incremental caches must reproduce.
double NaiveLifetime(const WeightVector& w, uint64_t start, uint32_t beta,
                     double mu) {
  double sum = 0.0;
  for (uint64_t i = start; i <= start + beta; ++i) {
    sum += InverseWeight(w.At(i), mu);
  }
  return sum / static_cast<double>(beta);
}

TEST(VectorMathTest, WeightVectorCachesMatchNaiveUnderRandomUpdates) {
  Rng rng(0xbeef);
  const uint32_t length = 200;
  const uint32_t beta = 23;
  const double mu = 0.01;
  const double alpha = 0.8;
  WeightVector w(length);

  for (int round = 0; round < 300; ++round) {
    const uint64_t req = static_cast<uint64_t>(rng.UniformInt(0, length - 1));
    w.Update(req, rng.UniformDouble(1e-4, 2.0), alpha);

    // Spot-check a random window each round: span cache vs recompute.
    const uint64_t lo = static_cast<uint64_t>(rng.UniformInt(0, length - 1));
    const uint64_t hi =
        std::min<uint64_t>(lo + static_cast<uint64_t>(rng.UniformInt(0, 40)),
                           length - 1);
    const std::vector<double> want = w.InverseWeights(lo, hi, mu);
    const std::span<const double> got = w.InverseWeightsSpan(lo, hi, mu);
    ExpectBitIdentical(got, want, "InverseWeightsSpan");

    const uint64_t start = static_cast<uint64_t>(
        rng.UniformInt(0, static_cast<int64_t>(length) - beta - 2));
    const double lifetime = w.LifetimeWeight(start, beta, mu);
    EXPECT_EQ(lifetime, NaiveLifetime(w, start, beta, mu))
        << "round " << round << " start " << start;
    // A second call must serve the memo and return the same bits.
    EXPECT_EQ(w.LifetimeWeight(start, beta, mu), lifetime);
  }
}

TEST(VectorMathTest, WeightVectorCacheSurvivesParameterSwitches) {
  Rng rng(0x77);
  WeightVector w(64);
  for (int i = 0; i < 40; ++i) {
    w.Update(static_cast<uint64_t>(rng.UniformInt(0, 63)),
             rng.UniformDouble(0.01, 1.0), 0.8);
  }
  // Alternate (beta, mu) keys so the memo is rebuilt repeatedly; every answer
  // must still match the naive fold for its own parameters.
  for (int round = 0; round < 10; ++round) {
    for (uint32_t beta : {5u, 13u}) {
      for (double mu : {0.01, 0.5}) {
        const uint64_t start = static_cast<uint64_t>(rng.UniformInt(0, 40));
        EXPECT_EQ(w.LifetimeWeight(start, beta, mu),
                  NaiveLifetime(w, start, beta, mu));
      }
    }
  }
}

}  // namespace
}  // namespace pronghorn
