#include "src/store/object_store.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace pronghorn {
namespace {

ObjectBlob Blob(std::string_view text, uint64_t logical_size) {
  return ObjectBlob(std::vector<uint8_t>(text.begin(), text.end()), logical_size);
}

// Shared conformance suite run against both implementations.
class ObjectStoreConformance : public ::testing::TestWithParam<const char*> {
 protected:
  void SetUp() override {
    if (std::string_view(GetParam()) == "memory") {
      store_ = std::make_unique<InMemoryObjectStore>();
    } else {
      temp_dir_ = std::filesystem::temp_directory_path() /
                  ("pronghorn_store_test_" + std::to_string(::getpid()));
      std::filesystem::remove_all(temp_dir_);
      auto opened = FileBackedObjectStore::Open(temp_dir_.string());
      ASSERT_TRUE(opened.ok()) << opened.status().ToString();
      store_ = *std::move(opened);
    }
  }

  void TearDown() override {
    store_.reset();
    if (!temp_dir_.empty()) {
      std::filesystem::remove_all(temp_dir_);
    }
  }

  std::unique_ptr<ObjectStore> store_;
  std::filesystem::path temp_dir_;
};

TEST_P(ObjectStoreConformance, PutGetRoundTrip) {
  ASSERT_TRUE(store_->Put("a/b", Blob("payload", 100)).ok());
  auto got = store_->Get("a/b");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->bytes().begin(), got->bytes().end()), "payload");
  EXPECT_EQ(got->logical_size, 100u);
}

TEST_P(ObjectStoreConformance, GetMissingIsNotFound) {
  EXPECT_EQ(store_->Get("nope").status().code(), StatusCode::kNotFound);
}

TEST_P(ObjectStoreConformance, EmptyKeyRejected) {
  EXPECT_EQ(store_->Put("", Blob("x", 1)).code(), StatusCode::kInvalidArgument);
}

TEST_P(ObjectStoreConformance, OverwriteReplacesValue) {
  ASSERT_TRUE(store_->Put("k", Blob("one", 10)).ok());
  ASSERT_TRUE(store_->Put("k", Blob("two", 20)).ok());
  auto got = store_->Get("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(std::string(got->bytes().begin(), got->bytes().end()), "two");
  EXPECT_EQ(store_->accounting().logical_bytes_stored, 20u);
}

TEST_P(ObjectStoreConformance, DeleteRemoves) {
  ASSERT_TRUE(store_->Put("k", Blob("x", 5)).ok());
  EXPECT_TRUE(store_->Contains("k"));
  ASSERT_TRUE(store_->Delete("k").ok());
  EXPECT_FALSE(store_->Contains("k"));
  EXPECT_EQ(store_->Delete("k").code(), StatusCode::kNotFound);
  EXPECT_EQ(store_->accounting().logical_bytes_stored, 0u);
}

TEST_P(ObjectStoreConformance, ListKeysWithPrefix) {
  ASSERT_TRUE(store_->Put("snapshots/f1/1", Blob("a", 1)).ok());
  ASSERT_TRUE(store_->Put("snapshots/f1/2", Blob("b", 1)).ok());
  ASSERT_TRUE(store_->Put("snapshots/f2/1", Blob("c", 1)).ok());
  const auto all = store_->ListKeys("");
  EXPECT_EQ(all.size(), 3u);
  const auto f1 = store_->ListKeys("snapshots/f1/");
  ASSERT_EQ(f1.size(), 2u);
  EXPECT_EQ(f1[0], "snapshots/f1/1");
  EXPECT_EQ(f1[1], "snapshots/f1/2");
  EXPECT_TRUE(store_->ListKeys("zzz").empty());
}

TEST_P(ObjectStoreConformance, AccountingTracksTraffic) {
  ASSERT_TRUE(store_->Put("a", Blob("x", 50)).ok());
  ASSERT_TRUE(store_->Put("b", Blob("y", 70)).ok());
  ASSERT_TRUE(store_->Get("a").ok());
  ASSERT_TRUE(store_->Get("a").ok());

  const StoreAccounting acc = store_->accounting();
  EXPECT_EQ(acc.logical_bytes_stored, 120u);
  EXPECT_EQ(acc.peak_logical_bytes, 120u);
  EXPECT_EQ(acc.network_bytes_uploaded, 120u);
  EXPECT_EQ(acc.network_bytes_downloaded, 100u);
  EXPECT_EQ(acc.put_count, 2u);
  EXPECT_EQ(acc.get_count, 2u);
}

TEST_P(ObjectStoreConformance, PeakSurvivesDeletes) {
  ASSERT_TRUE(store_->Put("a", Blob("x", 500)).ok());
  ASSERT_TRUE(store_->Delete("a").ok());
  ASSERT_TRUE(store_->Put("b", Blob("y", 100)).ok());
  const StoreAccounting acc = store_->accounting();
  EXPECT_EQ(acc.logical_bytes_stored, 100u);
  EXPECT_EQ(acc.peak_logical_bytes, 500u);
}

TEST_P(ObjectStoreConformance, BinaryPayloadSafe) {
  std::vector<uint8_t> raw;
  for (int i = 0; i < 256; ++i) {
    raw.push_back(static_cast<uint8_t>(i));
  }
  ObjectBlob blob(raw, raw.size());
  ASSERT_TRUE(store_->Put("bin", std::move(blob)).ok());
  auto got = store_->Get("bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->bytes(), raw);
}

INSTANTIATE_TEST_SUITE_P(Implementations, ObjectStoreConformance,
                         ::testing::Values("memory", "file"));

TEST(FileBackedObjectStoreTest, PersistsAcrossReopen) {
  const auto dir = std::filesystem::temp_directory_path() / "pronghorn_persist_test";
  std::filesystem::remove_all(dir);
  {
    auto store = FileBackedObjectStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    ASSERT_TRUE((*store)->Put("snapshots/f/9", Blob("persisted", 42)).ok());
  }
  {
    auto store = FileBackedObjectStore::Open(dir.string());
    ASSERT_TRUE(store.ok());
    auto got = (*store)->Get("snapshots/f/9");
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(std::string(got->bytes().begin(), got->bytes().end()), "persisted");
    EXPECT_EQ(got->logical_size, 42u);
    const auto keys = (*store)->ListKeys("");
    ASSERT_EQ(keys.size(), 1u);
    EXPECT_EQ(keys[0], "snapshots/f/9");
  }
  std::filesystem::remove_all(dir);
}

// --- Striped-lock concurrency stress --------------------------------------
//
// InMemoryObjectStore shards its map across kStoreStripes cache-line-aligned
// stripes with serial-exact atomic accounting. These tests drive it from many
// threads (run under TSan in CI) and then verify the invariants that survive
// any interleaving: no lost keys, internally consistent accounting, and
// ListKeys still globally sorted.

TEST(InMemoryObjectStoreStressTest, ConcurrentDisjointWritersLoseNothing) {
  InMemoryObjectStore store;
  constexpr int kThreads = 8;
  constexpr int kKeysPerThread = 200;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t]() {
      for (int i = 0; i < kKeysPerThread; ++i) {
        const std::string key =
            "w" + std::to_string(t) + "/k" + std::to_string(i);
        ASSERT_TRUE(store.Put(key, Blob("payload", 100)).ok());
        auto got = store.Get(key);
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got->logical_size, 100u);
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto keys = store.ListKeys("");
  EXPECT_EQ(keys.size(), static_cast<size_t>(kThreads * kKeysPerThread));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  const StoreAccounting acc = store.accounting();
  EXPECT_EQ(acc.put_count, static_cast<uint64_t>(kThreads * kKeysPerThread));
  EXPECT_EQ(acc.get_count, static_cast<uint64_t>(kThreads * kKeysPerThread));
  EXPECT_EQ(acc.logical_bytes_stored,
            static_cast<uint64_t>(kThreads * kKeysPerThread) * 100u);
  EXPECT_GE(acc.peak_logical_bytes, acc.logical_bytes_stored);
}

TEST(InMemoryObjectStoreStressTest, ContendedSameKeyChurnStaysConsistent) {
  InMemoryObjectStore store;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 300;
  // All threads fight over a handful of keys: overwrites, deletes of
  // possibly-absent keys, reads of possibly-absent keys.
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&store, t]() {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "hot/" + std::to_string((t + i) % 5);
        switch (i % 3) {
          case 0:
            ASSERT_TRUE(store.Put(key, Blob("x", 50)).ok());
            break;
          case 1:
            (void)store.Get(key);  // NotFound is fine mid-churn.
            break;
          default:
            (void)store.Delete(key);
            break;
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Whatever interleaving happened, the final footprint equals 50 bytes per
  // surviving key and the peak is at least the final value.
  const auto keys = store.ListKeys("hot/");
  const StoreAccounting acc = store.accounting();
  EXPECT_EQ(acc.logical_bytes_stored, static_cast<uint64_t>(keys.size()) * 50u);
  EXPECT_GE(acc.peak_logical_bytes, acc.logical_bytes_stored);
  EXPECT_LE(keys.size(), 5u);
}

TEST(InMemoryObjectStoreStressTest, SerialAccountingMatchesPreStripingSemantics) {
  // Serial-exactness contract: a single-threaded op sequence produces the
  // exact accounting the old single-mutex implementation produced.
  InMemoryObjectStore store;
  ASSERT_TRUE(store.Put("a", Blob("one", 1000)).ok());
  ASSERT_TRUE(store.Put("b", Blob("two", 500)).ok());
  ASSERT_TRUE(store.Put("a", Blob("three", 200)).ok());  // overwrite shrinks
  ASSERT_TRUE(store.Get("b").ok());
  ASSERT_TRUE(store.Delete("b").ok());
  const StoreAccounting acc = store.accounting();
  EXPECT_EQ(acc.logical_bytes_stored, 200u);
  EXPECT_EQ(acc.peak_logical_bytes, 1500u);
  EXPECT_EQ(acc.network_bytes_uploaded, 1700u);
  EXPECT_EQ(acc.network_bytes_downloaded, 500u);
  EXPECT_EQ(acc.put_count, 3u);
  EXPECT_EQ(acc.get_count, 1u);
  EXPECT_EQ(acc.delete_count, 1u);
  // Flat store: physical mirrors logical.
  EXPECT_EQ(acc.physical.flat_bytes_stored, acc.physical.bytes_stored);
}

TEST(FileBackedObjectStoreTest, KeyEscapingHandlesSlashesAndPercents) {
  const auto dir = std::filesystem::temp_directory_path() / "pronghorn_escape_test";
  std::filesystem::remove_all(dir);
  auto store = FileBackedObjectStore::Open(dir.string());
  ASSERT_TRUE(store.ok());
  const std::string tricky = "a/b%c/d%%2F";
  ASSERT_TRUE((*store)->Put(tricky, Blob("v", 1)).ok());
  EXPECT_TRUE((*store)->Contains(tricky));
  const auto keys = (*store)->ListKeys("");
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], tricky);
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace pronghorn
