#include "src/common/clock.h"

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

TEST(DurationTest, Constructors) {
  EXPECT_EQ(Duration::Micros(1500).ToMicros(), 1500);
  EXPECT_EQ(Duration::Millis(2).ToMicros(), 2000);
  EXPECT_EQ(Duration::Seconds(0.5).ToMicros(), 500000);
  EXPECT_EQ(Duration::Zero().ToMicros(), 0);
}

TEST(DurationTest, Conversions) {
  const Duration d = Duration::Micros(1234567);
  EXPECT_DOUBLE_EQ(d.ToMillis(), 1234.567);
  EXPECT_DOUBLE_EQ(d.ToSeconds(), 1.234567);
}

TEST(DurationTest, Arithmetic) {
  const Duration a = Duration::Millis(3);
  const Duration b = Duration::Millis(1);
  EXPECT_EQ((a + b).ToMicros(), 4000);
  EXPECT_EQ((a - b).ToMicros(), 2000);
  EXPECT_EQ((a * 2.5).ToMicros(), 7500);
  Duration c = a;
  c += b;
  EXPECT_EQ(c.ToMicros(), 4000);
  c -= b;
  EXPECT_EQ(c.ToMicros(), 3000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::Millis(1), Duration::Millis(2));
  EXPECT_EQ(Duration::Millis(1), Duration::Micros(1000));
  EXPECT_GT(Duration::Seconds(1), Duration::Millis(999));
}

TEST(DurationTest, ToStringPicksUnit) {
  EXPECT_EQ(Duration::Micros(12).ToString(), "12us");
  EXPECT_EQ(Duration::Micros(1500).ToString(), "1.500ms");
  EXPECT_EQ(Duration::Seconds(2.25).ToString(), "2.250s");
}

TEST(TimePointTest, ArithmeticWithDuration) {
  const TimePoint t = TimePoint::FromMicros(1000);
  const TimePoint later = t + Duration::Micros(500);
  EXPECT_EQ(later.ToMicros(), 1500);
  EXPECT_EQ((later - t).ToMicros(), 500);
  EXPECT_DOUBLE_EQ(later.ToSeconds(), 0.0015);
}

TEST(TimePointTest, Ordering) {
  EXPECT_LT(TimePoint::FromMicros(1), TimePoint::FromMicros(2));
  EXPECT_EQ(TimePoint::FromMicros(5), TimePoint::FromMicros(5));
}

TEST(SimClockTest, StartsAtZero) {
  SimClock clock;
  EXPECT_EQ(clock.now().ToMicros(), 0);
}

TEST(SimClockTest, AdvanceAccumulates) {
  SimClock clock;
  clock.Advance(Duration::Millis(5));
  clock.Advance(Duration::Micros(250));
  EXPECT_EQ(clock.now().ToMicros(), 5250);
}

TEST(SimClockTest, NegativeAdvanceIsClamped) {
  SimClock clock;
  clock.Advance(Duration::Millis(1));
  clock.Advance(Duration::Micros(-500));
  EXPECT_EQ(clock.now().ToMicros(), 1000);
}

TEST(SimClockTest, AdvanceToNeverMovesBackwards) {
  SimClock clock;
  clock.AdvanceTo(TimePoint::FromMicros(100));
  EXPECT_EQ(clock.now().ToMicros(), 100);
  clock.AdvanceTo(TimePoint::FromMicros(50));
  EXPECT_EQ(clock.now().ToMicros(), 100);
  clock.AdvanceTo(TimePoint::FromMicros(200));
  EXPECT_EQ(clock.now().ToMicros(), 200);
}

}  // namespace
}  // namespace pronghorn
