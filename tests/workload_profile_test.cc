#include "src/workloads/workload_profile.h"

#include <gtest/gtest.h>

#include <set>

#include "src/common/rng.h"
#include "src/workloads/input_model.h"

namespace pronghorn {
namespace {

TEST(WorkloadRegistryTest, EvaluationSetHasThirteenBenchmarks) {
  const auto& registry = WorkloadRegistry::Default();
  // Table 3's evaluation set plus the auxiliary Table-1 JSON parser.
  EXPECT_EQ(registry.EvaluationSet().size(), 13u);
  EXPECT_EQ(registry.profiles().size(), 14u);
  for (const WorkloadProfile* p : registry.EvaluationSet()) {
    EXPECT_FALSE(p->auxiliary) << p->name;
  }
}

TEST(WorkloadRegistryTest, JsonParserIsAuxiliary) {
  const auto profile = WorkloadRegistry::Default().Find("JSONParse");
  ASSERT_TRUE(profile.ok());
  EXPECT_TRUE((*profile)->auxiliary);
  EXPECT_EQ((*profile)->family, RuntimeFamily::kJvm);
  // Table 1: 360 ms first request (lazy init + interpreted body).
  EXPECT_NEAR(((*profile)->lazy_init_cost + (*profile)->compute_base).ToMillis(), 360.0,
              1.0);
}

TEST(WorkloadRegistryTest, PaperBenchmarkNamesPresent) {
  const auto& registry = WorkloadRegistry::Default();
  // Table 3 of the paper.
  for (const char* name :
       {"HTMLRendering", "MatrixMult", "Hash", "WordCount", "BFS", "DFS", "MST",
        "DynamicHTML", "PageRank", "Uploader", "Thumbnailer", "Video", "Compression"}) {
    EXPECT_TRUE(registry.Find(name).ok()) << name;
  }
}

TEST(WorkloadRegistryTest, FamiliesMatchTable3) {
  const auto& registry = WorkloadRegistry::Default();
  // NamesForFamily covers the evaluation set only (auxiliary excluded).
  EXPECT_EQ(registry.NamesForFamily(RuntimeFamily::kJvm).size(), 4u);
  EXPECT_EQ(registry.NamesForFamily(RuntimeFamily::kPyPy).size(), 9u);
  EXPECT_EQ((*registry.Find("Hash"))->family, RuntimeFamily::kJvm);
  EXPECT_EQ((*registry.Find("BFS"))->family, RuntimeFamily::kPyPy);
}

TEST(WorkloadRegistryTest, IoBoundFlagsMatchPaper) {
  const auto& registry = WorkloadRegistry::Default();
  for (const char* name : {"Uploader", "Thumbnailer", "Video", "Compression"}) {
    EXPECT_TRUE((*registry.Find(name))->io_bound) << name;
  }
  for (const char* name : {"BFS", "DynamicHTML", "Hash", "MatrixMult"}) {
    EXPECT_FALSE((*registry.Find(name))->io_bound) << name;
  }
}

TEST(WorkloadRegistryTest, FindUnknownFails) {
  const auto result = WorkloadRegistry::Default().Find("NoSuchBenchmark");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
}

TEST(WorkloadRegistryTest, SnapshotSizesMatchTable4Scale) {
  const auto& registry = WorkloadRegistry::Default();
  // Java snapshots are ~10-14 MB, Python ~54-64 MB (Table 4).
  for (const WorkloadProfile& p : registry.profiles()) {
    if (p.family == RuntimeFamily::kJvm) {
      EXPECT_GE(p.snapshot_mb, 10.0) << p.name;
      EXPECT_LE(p.snapshot_mb, 14.0) << p.name;
    } else {
      EXPECT_GE(p.snapshot_mb, 50.0) << p.name;
      EXPECT_LE(p.snapshot_mb, 65.0) << p.name;
    }
  }
}

TEST(WorkloadRegistryTest, CheckpointCostsMatchTable4Scale) {
  // Table 4: checkpoint 60-105 ms, restore 30-81 ms.
  for (const WorkloadProfile& p : WorkloadRegistry::Default().profiles()) {
    EXPECT_GE(p.checkpoint_mean, Duration::Millis(60)) << p.name;
    EXPECT_LE(p.checkpoint_mean, Duration::Millis(106)) << p.name;
    EXPECT_GE(p.restore_mean, Duration::Millis(30)) << p.name;
    EXPECT_LE(p.restore_mean, Duration::Millis(81)) << p.name;
  }
}

TEST(WorkloadRegistryTest, ConvergenceScalesMatchFigure1) {
  const auto& registry = WorkloadRegistry::Default();
  // PyPy converges around 1000 requests, the JVM takes roughly twice as long.
  EXPECT_EQ((*registry.Find("DynamicHTML"))->convergence_requests, 1000u);
  EXPECT_EQ((*registry.Find("HTMLRendering"))->convergence_requests, 2500u);
  for (const WorkloadProfile& p : registry.profiles()) {
    if (p.family == RuntimeFamily::kJvm) {
      EXPECT_GE(p.convergence_requests, 1500u) << p.name;
    } else {
      EXPECT_LE(p.convergence_requests, 1100u) << p.name;
    }
  }
}

TEST(WorkloadProfileTest, LatencyHelpers) {
  WorkloadProfile p;
  p.compute_base = Duration::Millis(100);
  p.converged_speedup = 4.0;
  p.io_base = Duration::Millis(10);
  EXPECT_EQ(p.InterpretedLatency(), Duration::Millis(110));
  EXPECT_EQ(p.ConvergedLatency(), Duration::Millis(35));
}

TEST(WorkloadRegistryCreateTest, RejectsEmptyName) {
  WorkloadProfile p;
  p.name = "";
  p.converged_speedup = 2.0;
  const auto result = WorkloadRegistry::Create({p});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadRegistryCreateTest, RejectsSpeedupBelowOne) {
  WorkloadProfile p;
  p.name = "X";
  p.converged_speedup = 0.5;
  const auto result = WorkloadRegistry::Create({p});
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WorkloadRegistryCreateTest, RejectsDuplicates) {
  WorkloadProfile p;
  p.name = "X";
  p.converged_speedup = 2.0;
  const auto result = WorkloadRegistry::Create({p, p});
  EXPECT_EQ(result.status().code(), StatusCode::kAlreadyExists);
}

TEST(WorkloadRegistryCreateTest, RejectsDegenerateWarmup) {
  WorkloadProfile p;
  p.name = "X";
  p.converged_speedup = 2.0;
  p.hot_method_count = 0;
  EXPECT_FALSE(WorkloadRegistry::Create({p}).ok());
  p.hot_method_count = 4;
  p.convergence_requests = 0;
  EXPECT_FALSE(WorkloadRegistry::Create({p}).ok());
}

TEST(WorkloadRegistryCreateTest, AcceptsValidCustomProfile) {
  WorkloadProfile p;
  p.name = "Custom";
  p.converged_speedup = 3.0;
  p.hot_method_count = 4;
  p.convergence_requests = 100;
  const auto registry = WorkloadRegistry::Create({p});
  ASSERT_TRUE(registry.ok());
  EXPECT_TRUE(registry->Find("Custom").ok());
}

TEST(RuntimeFamilyTest, Names) {
  EXPECT_EQ(RuntimeFamilyName(RuntimeFamily::kJvm), "JVM");
  EXPECT_EQ(RuntimeFamilyName(RuntimeFamily::kPyPy), "PyPy");
}

// --- InputModel ---------------------------------------------------------

TEST(InputModelTest, DisabledYieldsUnitScale) {
  const auto profile = WorkloadRegistry::Default().Find("BFS");
  InputModel model(**profile, /*enable_noise=*/false);
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_DOUBLE_EQ(model.NextScale(rng), 1.0);
  }
}

TEST(InputModelTest, ScalesStayClipped) {
  const auto profile = WorkloadRegistry::Default().Find("BFS");
  InputModel model(**profile, /*enable_noise=*/true);
  Rng rng(2);
  for (int i = 0; i < 5000; ++i) {
    const double scale = model.NextScale(rng);
    EXPECT_GE(scale, InputModel::kMinScale);
    EXPECT_LE(scale, InputModel::kMaxScale);
  }
}

TEST(InputModelTest, GraphBenchmarksSpanOrderOfMagnitude) {
  // Footnote 4 of the paper: the IQR of compute-bound benchmark latencies
  // spans over an order of magnitude; input scale drives that spread.
  const auto profile = WorkloadRegistry::Default().Find("PageRank");
  InputModel model(**profile, /*enable_noise=*/true);
  Rng rng(3);
  std::vector<double> scales;
  for (int i = 0; i < 4000; ++i) {
    scales.push_back(model.NextScale(rng));
  }
  std::sort(scales.begin(), scales.end());
  const double q10 = scales[400];
  const double q90 = scales[3600];
  EXPECT_GT(q90 / q10, 8.0);
}

TEST(InputModelTest, MedianNearOne) {
  const auto profile = WorkloadRegistry::Default().Find("MST");
  InputModel model(**profile, /*enable_noise=*/true);
  Rng rng(4);
  std::vector<double> scales;
  for (int i = 0; i < 4001; ++i) {
    scales.push_back(model.NextScale(rng));
  }
  std::sort(scales.begin(), scales.end());
  EXPECT_NEAR(scales[2000], 1.0, 0.15);
}

}  // namespace
}  // namespace pronghorn
