#include "src/common/flags.h"

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

FlagParser MakeParser() {
  FlagParser parser;
  parser.AddFlag("name", "default", "a string flag");
  parser.AddFlag("count", "7", "an int flag");
  parser.AddFlag("rate", "0.5", "a double flag");
  parser.AddSwitch("verbose", "a switch");
  return parser;
}

Status ParseArgs(FlagParser& parser, std::vector<const char*> args) {
  return parser.Parse(static_cast<int>(args.size()), args.data());
}

TEST(FlagParserTest, DefaultsApplyWithoutArgs) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {}).ok());
  EXPECT_EQ(*parser.GetString("name"), "default");
  EXPECT_EQ(*parser.GetInt("count"), 7);
  EXPECT_DOUBLE_EQ(*parser.GetDouble("rate"), 0.5);
  EXPECT_FALSE(*parser.GetBool("verbose"));
}

TEST(FlagParserTest, SpaceSeparatedValues) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--name", "widget", "--count", "42"}).ok());
  EXPECT_EQ(*parser.GetString("name"), "widget");
  EXPECT_EQ(*parser.GetInt("count"), 42);
}

TEST(FlagParserTest, EqualsSeparatedValues) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--name=gadget", "--rate=2.25"}).ok());
  EXPECT_EQ(*parser.GetString("name"), "gadget");
  EXPECT_DOUBLE_EQ(*parser.GetDouble("rate"), 2.25);
}

TEST(FlagParserTest, SwitchForms) {
  {
    FlagParser parser = MakeParser();
    ASSERT_TRUE(ParseArgs(parser, {"--verbose"}).ok());
    EXPECT_TRUE(*parser.GetBool("verbose"));
  }
  {
    FlagParser parser = MakeParser();
    ASSERT_TRUE(ParseArgs(parser, {"--verbose=false"}).ok());
    EXPECT_FALSE(*parser.GetBool("verbose"));
  }
  {
    FlagParser parser = MakeParser();
    EXPECT_FALSE(ParseArgs(parser, {"--verbose=maybe"}).ok());
  }
}

TEST(FlagParserTest, UnknownFlagRejected) {
  FlagParser parser = MakeParser();
  const Status status = ParseArgs(parser, {"--nmae", "typo"});
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(FlagParserTest, MissingValueRejected) {
  FlagParser parser = MakeParser();
  EXPECT_FALSE(ParseArgs(parser, {"--name"}).ok());
}

TEST(FlagParserTest, PositionalArgumentsCollected) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"alpha", "--count", "3", "beta"}).ok());
  ASSERT_EQ(parser.positional().size(), 2u);
  EXPECT_EQ(parser.positional()[0], "alpha");
  EXPECT_EQ(parser.positional()[1], "beta");
}

TEST(FlagParserTest, TypeErrorsSurface) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count", "twelve", "--rate", "fast"}).ok());
  EXPECT_FALSE(parser.GetInt("count").ok());
  EXPECT_FALSE(parser.GetDouble("rate").ok());
}

TEST(FlagParserTest, UndeclaredGetRejected) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {}).ok());
  EXPECT_FALSE(parser.GetString("ghost").ok());
}

TEST(FlagParserTest, LastValueWins) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count=1", "--count=2"}).ok());
  EXPECT_EQ(*parser.GetInt("count"), 2);
}

TEST(FlagParserTest, UsageMentionsEveryFlag) {
  FlagParser parser = MakeParser();
  const std::string usage = parser.UsageText("tool");
  EXPECT_NE(usage.find("--name"), std::string::npos);
  EXPECT_NE(usage.find("--count"), std::string::npos);
  EXPECT_NE(usage.find("--verbose"), std::string::npos);
  EXPECT_NE(usage.find("default: 7"), std::string::npos);
}

TEST(FlagParserTest, NegativeAndBooleanNumericValues) {
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"--count", "-5"}).ok());
  EXPECT_EQ(*parser.GetInt("count"), -5);
  FlagParser parser2;
  parser2.AddFlag("flagged", "1", "numeric bool");
  ASSERT_TRUE(parser2.Parse(0, nullptr).ok());
  EXPECT_TRUE(*parser2.GetBool("flagged"));
}

TEST(FlagParserTest, SingleDashFlagSpellingRejected) {
  // `-seed 7` silently becoming a positional would turn the flag into a
  // no-op; it must hard-error and point at the `--` spelling instead.
  FlagParser parser = MakeParser();
  const Status status = ParseArgs(parser, {"-name", "widget"});
  ASSERT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(status.message().find("unrecognized argument '-name'"),
            std::string::npos);
  EXPECT_NE(status.message().find("--name"), std::string::npos);
}

TEST(FlagParserTest, SingleDashRejectionDoesNotEatNumbersOrStdin) {
  // Negative numbers and the conventional `-` (stdin) remain positionals;
  // only dash-plus-letter spellings are treated as misspelled flags.
  FlagParser parser = MakeParser();
  ASSERT_TRUE(ParseArgs(parser, {"-5", "-.25", "-", "--count", "3"}).ok());
  ASSERT_EQ(parser.positional().size(), 3u);
  EXPECT_EQ(parser.positional()[0], "-5");
  EXPECT_EQ(parser.positional()[1], "-.25");
  EXPECT_EQ(parser.positional()[2], "-");
  EXPECT_EQ(*parser.GetInt("count"), 3);

  FlagParser parser2 = MakeParser();
  EXPECT_FALSE(ParseArgs(parser2, {"alpha", "-v"}).ok());
}

}  // namespace
}  // namespace pronghorn
