// Unit battery for the service's bounded MPMC queue (run under TSan in CI):
// capacity backpressure, FIFO ordering, the close/drain shutdown handshake,
// the recovery-only PushFront bypass, the deadline-bounded shedding push, and
// a multi-producer/multi-consumer stress that checks conservation plus
// per-producer order as seen by each consumer.

#include "src/service/mpmc_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pronghorn {
namespace {

TEST(MpmcQueueTest, SingleProducerFifo) {
  MpmcQueue<int> queue(8);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.Push(i));
  }
  EXPECT_EQ(queue.depth(), 5u);
  for (int i = 0; i < 5; ++i) {
    int out = -1;
    ASSERT_TRUE(queue.Pop(out));
    EXPECT_EQ(out, i);
  }
  EXPECT_EQ(queue.depth(), 0u);
}

TEST(MpmcQueueTest, ZeroCapacityClampsToOne) {
  MpmcQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  ASSERT_TRUE(queue.Push(7));
  EXPECT_EQ(queue.depth(), 1u);
}

TEST(MpmcQueueTest, FullQueueBlocksPushUntilPop) {
  MpmcQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    ASSERT_TRUE(queue.Push(3));  // Blocks: the queue is full.
    pushed.store(true, std::memory_order_release);
  });
  // The producer must still be parked in Push; capacity is never exceeded.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));
  EXPECT_EQ(queue.depth(), 2u);

  int out = 0;
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 1);
  producer.join();
  EXPECT_TRUE(pushed.load(std::memory_order_acquire));
  EXPECT_EQ(queue.depth(), 2u);

  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 2);
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 3);
}

TEST(MpmcQueueTest, CloseDrainsAcceptedItemsThenFails) {
  MpmcQueue<int> queue(4);
  ASSERT_TRUE(queue.Push(10));
  ASSERT_TRUE(queue.Push(11));
  queue.Close();

  // Pushes fail immediately after close; the items are dropped.
  EXPECT_FALSE(queue.Push(12));
  EXPECT_FALSE(queue.PushFront(13));

  // Pops drain everything accepted before the close, then return false.
  int out = 0;
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 10);
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 11);
  EXPECT_FALSE(queue.Pop(out));
  EXPECT_FALSE(queue.Pop(out));  // Idempotent: stays drained-and-closed.
}

TEST(MpmcQueueTest, CloseUnblocksParkedConsumer) {
  MpmcQueue<int> queue(2);
  std::thread consumer([&] {
    int out = 0;
    EXPECT_FALSE(queue.Pop(out));  // Parked on empty, woken by Close.
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.Close();
  consumer.join();
}

TEST(MpmcQueueTest, TryPopNeverBlocks) {
  MpmcQueue<int> queue(2);
  int out = -1;
  EXPECT_FALSE(queue.TryPop(out));
  ASSERT_TRUE(queue.Push(5));
  ASSERT_TRUE(queue.TryPop(out));
  EXPECT_EQ(out, 5);
  EXPECT_FALSE(queue.TryPop(out));
}

TEST(MpmcQueueTest, PushFrontJumpsTheLineAndBypassesCapacity) {
  MpmcQueue<int> queue(2);
  ASSERT_TRUE(queue.Push(1));
  ASSERT_TRUE(queue.Push(2));  // Full.

  // Recovery re-queue: accepted despite the full queue, lands at the front.
  ASSERT_TRUE(queue.PushFront(0));
  EXPECT_EQ(queue.depth(), 3u);  // Briefly capacity + 1.

  int out = -1;
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 0);
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 1);
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 2);
}

TEST(MpmcQueueTest, PushWithDeadlineShedsOnSaturation) {
  MpmcQueue<int> queue(1);
  size_t depth = 0;

  // Space available: accepted, depth reported.
  EXPECT_EQ(queue.PushWithDeadline(1, std::chrono::milliseconds(10), &depth),
            PushOutcome::kAccepted);
  EXPECT_EQ(depth, 1u);

  // Still full at the deadline: shed, depth cites the pressure.
  depth = 0;
  EXPECT_EQ(queue.PushWithDeadline(2, std::chrono::milliseconds(10), &depth),
            PushOutcome::kShed);
  EXPECT_EQ(depth, 1u);
  EXPECT_EQ(queue.depth(), 1u);  // The shed item was dropped.

  // A consumer freeing a slot inside the window converts the wait to accept.
  std::thread consumer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    int out = 0;
    ASSERT_TRUE(queue.Pop(out));
  });
  EXPECT_EQ(queue.PushWithDeadline(3, std::chrono::milliseconds(5000), nullptr),
            PushOutcome::kAccepted);
  consumer.join();

  queue.Close();
  EXPECT_EQ(queue.PushWithDeadline(4, std::chrono::milliseconds(10), nullptr),
            PushOutcome::kClosed);
}

TEST(MpmcQueueTest, ZeroDeadlineMeansBlockForever) {
  MpmcQueue<int> queue(1);
  ASSERT_EQ(queue.PushWithDeadline(1, std::chrono::milliseconds(0), nullptr),
            PushOutcome::kAccepted);

  std::atomic<bool> pushed{false};
  std::thread producer([&] {
    // Zero deadline degrades to the plain blocking Push, not an instant shed.
    EXPECT_EQ(queue.PushWithDeadline(2, std::chrono::milliseconds(0), nullptr),
              PushOutcome::kAccepted);
    pushed.store(true, std::memory_order_release);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(pushed.load(std::memory_order_acquire));
  int out = 0;
  ASSERT_TRUE(queue.Pop(out));
  producer.join();
  ASSERT_TRUE(queue.Pop(out));
  EXPECT_EQ(out, 2);

  queue.Close();
  EXPECT_EQ(queue.PushWithDeadline(3, std::chrono::milliseconds(0), nullptr),
            PushOutcome::kClosed);
}

// Multi-producer / multi-consumer stress (the TSan target). Items carry
// (producer, sequence); because the queue is FIFO, the subsequence any single
// consumer receives from one producer must be in increasing sequence order,
// and every pushed item must be popped exactly once.
TEST(MpmcQueueTest, StressConservationAndPerProducerOrder) {
  constexpr uint32_t kProducers = 4;
  constexpr uint32_t kConsumers = 4;
  constexpr uint64_t kPerProducer = 2000;
  struct Item {
    uint32_t producer = 0;
    uint64_t sequence = 0;
  };
  MpmcQueue<Item> queue(8);  // Small, so backpressure is constantly exercised.

  std::vector<std::thread> producers;
  for (uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (uint64_t i = 0; i < kPerProducer; ++i) {
        ASSERT_TRUE(queue.Push({p, i}));
      }
    });
  }

  std::vector<uint64_t> consumed(kConsumers, 0);
  std::vector<std::thread> consumers;
  for (uint32_t c = 0; c < kConsumers; ++c) {
    consumers.emplace_back([&, c] {
      std::vector<uint64_t> last_seen(kProducers, 0);
      std::vector<bool> any_seen(kProducers, false);
      Item item;
      while (queue.Pop(item)) {
        if (any_seen[item.producer]) {
          EXPECT_GT(item.sequence, last_seen[item.producer])
              << "per-producer order violated at consumer " << c;
        }
        any_seen[item.producer] = true;
        last_seen[item.producer] = item.sequence;
        ++consumed[c];
      }
    });
  }

  for (std::thread& thread : producers) {
    thread.join();
  }
  queue.Close();  // Consumers drain the remainder, then their Pops fail.
  for (std::thread& thread : consumers) {
    thread.join();
  }

  uint64_t total = 0;
  for (const uint64_t count : consumed) {
    total += count;
  }
  EXPECT_EQ(total, uint64_t{kProducers} * kPerProducer);
  EXPECT_EQ(queue.depth(), 0u);
}

}  // namespace
}  // namespace pronghorn
