// Crash-tolerance battery for the live orchestrator service (DESIGN.md §12).
// Seeded shard crashes at every stage of the envelope lifecycle — before
// processing (kEnqueue), after the reply but before the group commit
// (kMidBatch), and after the commit but before the journal truncates
// (kPreTruncate) — must leave the books balanced and the policy state
// bit-identical to a crash-free run: zero lost observations, zero duplicated
// observations. The write-ahead journal plus the policy-state blob's per-slot
// commit high-water mark are the mechanism under test.
//
//   - Fleet digest: crash injection is digest-neutral in simulation runs at
//     --threads {1, 2, 8} (synchronous clients never defer, so recovery has
//     nothing to replay — but every crash still fires and every shard still
//     recovers).
//   - Deferred exactly-once: a group-commit client crashed at all three
//     stages converges to the same PolicyState (weights, pool, high-water
//     mark) as the crash-free run, with the per-stage replay/dedup counters
//     exactly as the stage semantics predict.
//   - Cross-instance recovery: a journal left behind by a dead service is
//     replayed and truncated at Bind time, and new sequences resume above it.
//   - Torn tails: a partial or corrupt tail record is dropped and counted,
//     never misparsed.
//   - Backpressure: a stalled shard with a full queue sheds start decisions
//     past the deadline; an armed ServiceClient fallback degrades the shed
//     into a local cold session instead of a failure.

#include "src/service/orchestrator_service.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/checkpoint/criu_like_engine.h"
#include "src/common/rng.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/simulate.h"
#include "src/service/journal.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {
namespace {

PolicyConfig TestConfig() {
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 3;
  config.max_checkpoint_request = 30;
  return config;
}

// Fresh per-test journal directory under gtest's temp root.
std::string JournalDir(const std::string& name) {
  const std::filesystem::path dir =
      std::filesystem::path(::testing::TempDir()) / ("pronghorn_" + name);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// Single-slot flavor of the concurrency battery's per-function stack.
struct FunctionStack {
  FunctionStack(const OrchestrationPolicy& policy, const std::string& name_in,
                uint64_t seed)
      : name(name_in),
        profile(**WorkloadRegistry::Default().Find("DynamicHTML")),
        engine(HashCombine(seed, 0xe1)),
        state_store(db, name_in, policy.config()),
        snapshot_store(object_store) {
    orchestrator = std::make_unique<Orchestrator>(
        profile, WorkloadRegistry::Default(), policy, engine, snapshot_store,
        state_store, clock, HashCombine(seed, 0));
  }

  std::string name;
  const WorkloadProfile& profile;
  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  CriuLikeEngine engine;
  PolicyStateStore state_store;
  FlatSnapshotStore snapshot_store;
  std::unique_ptr<Orchestrator> orchestrator;
};

// ---------------------------------------------------------------------------
// Fleet digest: crash injection must be invisible in simulation reports.
// ---------------------------------------------------------------------------

std::vector<SimFunctionSpec> TwoFunctionSpecs(const RequestCentricPolicy& policy,
                                              const WorkloadRegistry& registry,
                                              uint64_t requests) {
  const auto dynamic_html = registry.Find("DynamicHTML");
  const auto bfs = registry.Find("BFS");
  EXPECT_TRUE(dynamic_html.ok());
  EXPECT_TRUE(bfs.ok());
  std::vector<SimFunctionSpec> specs;
  for (const WorkloadProfile* profile : {*dynamic_html, *bfs}) {
    SimFunctionSpec spec;
    spec.name = profile->name;
    spec.profile = profile;
    spec.policy = &policy;
    spec.requests = requests;
    specs.push_back(spec);
  }
  return specs;
}

TEST(ServiceCrashTest, FleetDigestUnchangedByCrashInjection) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  const auto& registry = WorkloadRegistry::Default();
  const std::vector<SimFunctionSpec> specs =
      TwoFunctionSpecs(*policy, registry, /*requests=*/120);

  // All envelopes route to one shard so every scheduled crash is reached
  // regardless of which functions hash where. The journal directory differs
  // per run but the journal *setting* does not: journaled Binds read the
  // high-water mark, so digests only compare at matched journal config.
  std::vector<uint32_t> digests;
  for (const uint32_t threads : {1u, 2u, 8u}) {
    for (const bool crashes : {false, true}) {
      ServiceConfig config;
      config.shards = 1;
      config.queue_capacity = 64;
      config.max_batch = 8;
      config.journal_dir = JournalDir(
          "fleet_" + std::to_string(threads) + (crashes ? "_crash" : "_clean"));
      if (crashes) {
        config.faults.crashes = {
            {.shard = 0, .at_op = 5, .stage = ServiceCrashStage::kEnqueue},
            {.shard = 0, .at_op = 9, .stage = ServiceCrashStage::kMidBatch},
            {.shard = 0, .at_op = 13, .stage = ServiceCrashStage::kPreTruncate},
        };
      }
      OrchestratorService service(config);

      SimOptions options;
      options.seed = 7;
      options.threads = threads;
      options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
      options.eviction.k = 4;
      options.service.enabled = true;
      options.service.instance = &service;
      auto report = Simulate(registry, SimTopology::kFleet, specs, options);
      ASSERT_TRUE(report.ok()) << report.status().ToString();
      service.Shutdown();

      const ServiceStatsSnapshot stats = service.stats();
      if (crashes) {
        // Digest neutrality over a run where nothing crashed would prove
        // nothing: every scheduled crash must actually have fired and every
        // dead shard must have been recovered.
        EXPECT_EQ(stats.crashes_injected, 3u);
        EXPECT_EQ(stats.shards_recovered, 3u);
      } else {
        EXPECT_EQ(stats.crashes_injected, 0u);
      }
      // Synchronous clients never defer, so recovery found empty journals.
      EXPECT_EQ(stats.journal_replayed, 0u);
      EXPECT_EQ(stats.flush_errors, 0u);
      digests.push_back(report->Digest());
    }
  }
  for (const uint32_t digest : digests) {
    EXPECT_EQ(digest, digests.front());
  }
}

// ---------------------------------------------------------------------------
// Deferred exactly-once: crashes at every stage, books balanced, state equal.
// ---------------------------------------------------------------------------

struct JournaledRunResult {
  ServiceStatsSnapshot stats;
  PolicyState state{PolicyConfig{}};
  uint64_t high_water = 0;
  uint64_t observations_issued = 0;
};

// Drives 3 sessions x 6 deferred observations through a single-shard
// journaled service under `faults`, drains, and harvests the books. The
// flush interval is effectively infinite so batch boundaries come only from
// max_batch and barriers — which makes the per-stage op arithmetic in the
// crash plans below exact.
JournaledRunResult RunJournaledWorkload(const ServiceFaultPlan& faults,
                                        const std::string& journal_dir) {
  JournaledRunResult result;
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  EXPECT_TRUE(policy.ok());
  FunctionStack stack(*policy, "crash-fn", /*seed=*/4242);

  ServiceConfig config;
  config.shards = 1;
  config.queue_capacity = 16;
  config.max_batch = 4;
  config.flush_interval = Duration::Seconds(1e6);
  config.journal_dir = journal_dir;
  config.faults = faults;
  OrchestratorService service(config);
  EXPECT_TRUE(service.Bind(stack.name, 0, stack.orchestrator.get(), &stack.clock).ok());

  ServiceClient client(&service, stack.name, 0, /*defer_commit=*/true);
  for (uint32_t cycle = 0; cycle < 3; ++cycle) {
    const auto view = client.StartWorker();
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    for (uint64_t i = 0; i < 6; ++i) {
      const auto outcome = client.ServeRequest({i, 1.0});
      EXPECT_TRUE(outcome.ok()) << outcome.status().ToString();
      ++result.observations_issued;
    }
    const SessionEnd end = client.EndSession();
    EXPECT_TRUE(end.retired);
  }
  EXPECT_TRUE(service.Drain().ok());

  result.stats = service.stats();
  const auto high_water = stack.orchestrator->CommittedHighWater();
  EXPECT_TRUE(high_water.ok()) << high_water.status().ToString();
  result.high_water = high_water.ok() ? *high_water : 0;
  const auto state = stack.state_store.Load();
  EXPECT_TRUE(state.ok()) << state.status().ToString();
  if (state.ok()) {
    result.state = *state;
  }
  service.Shutdown();
  return result;
}

TEST(ServiceCrashTest, DeferredExactlyOnceAcrossCrashStages) {
  // Envelope ops per cycle: start(1) + observations(6) + retire(1) = 8.
  //   op  3 = cycle-1 observation #2  -> kEnqueue   (parked and re-queued)
  //   op 12 = cycle-2 observation #3  -> kMidBatch  (buffers dropped)
  //   op 24 = cycle-3 retire barrier  -> kPreTruncate (truncate suppressed)
  ServiceFaultPlan faults;
  faults.crashes = {
      {.shard = 0, .at_op = 3, .stage = ServiceCrashStage::kEnqueue},
      {.shard = 0, .at_op = 12, .stage = ServiceCrashStage::kMidBatch},
      {.shard = 0, .at_op = 24, .stage = ServiceCrashStage::kPreTruncate},
  };
  const JournaledRunResult crashed =
      RunJournaledWorkload(faults, JournalDir("exactly_once_crashed"));
  const JournaledRunResult clean =
      RunJournaledWorkload(ServiceFaultPlan{}, JournalDir("exactly_once_clean"));

  // Every scheduled crash fired and every dead shard came back.
  EXPECT_EQ(crashed.stats.crashes_injected, 3u);
  EXPECT_EQ(crashed.stats.shards_recovered, 3u);
  EXPECT_EQ(crashed.stats.journal_torn_tails, 0u);
  // Recovery pushed dropped observations back through the commit path. The
  // exact replay/dedup split depends on where the policy's checkpoint plans
  // force mid-session flushes, so the split is pinned by the deterministic
  // BindDedupsRecordsBelowHighWater test below, not here.
  EXPECT_GE(crashed.stats.journal_replayed, 1u);
  EXPECT_EQ(clean.stats.crashes_injected, 0u);
  EXPECT_EQ(clean.stats.journal_replayed, 0u);
  EXPECT_EQ(clean.stats.journal_deduped, 0u);

  // Books balanced in both runs: nothing lost, nothing double-committed.
  for (const JournaledRunResult* run : {&crashed, &clean}) {
    EXPECT_EQ(run->observations_issued, 18u);
    EXPECT_EQ(run->stats.observations, 18u);
    EXPECT_EQ(run->stats.observations_committed, 18u);
    EXPECT_EQ(run->stats.flush_errors, 0u);
    EXPECT_EQ(run->stats.rejected_requests, 0u);
    EXPECT_EQ(run->high_water, 18u);
  }

  // The exactly-once bar: the crashed run converges to the identical policy
  // state — weights, snapshot pool, poisoned-snapshot ledger, and commit
  // high-water marks. (Database *versions* legitimately differ: recovery
  // commits at different batch boundaries.)
  EXPECT_EQ(crashed.state, clean.state);
  ASSERT_TRUE(crashed.state.commit_marks.contains(0));
  EXPECT_EQ(crashed.state.commit_marks.at(0), 18u);
}

// ---------------------------------------------------------------------------
// Cross-instance recovery: Bind replays a journal a dead service left behind.
// ---------------------------------------------------------------------------

TEST(ServiceCrashTest, BindReplaysJournalFromPreviousInstance) {
  const std::string dir = JournalDir("cross_instance");
  const std::string function = "recover-fn";

  // A "previous incarnation" journaled three observations and died before
  // its group commit truncated them.
  {
    auto journal = ObservationJournal::Open(dir, function, 0);
    ASSERT_TRUE(journal.ok()) << journal.status().ToString();
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE(
          (*journal)->Append({seq, seq - 1, Duration::Millis(50)}).ok());
    }
  }

  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  FunctionStack stack(*policy, function, /*seed=*/777);

  ServiceConfig config;
  config.shards = 1;
  config.max_batch = 16;
  config.flush_interval = Duration::Seconds(1e6);
  config.journal_dir = dir;
  OrchestratorService service(config);
  ASSERT_TRUE(service.Bind(function, 0, stack.orchestrator.get(), &stack.clock).ok());

  // Bind-time recovery committed all three leftover records and truncated.
  ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.journal_replayed, 3u);
  EXPECT_EQ(stats.journal_deduped, 0u);
  EXPECT_GE(stats.journal_truncations, 1u);
  const auto mark = stack.orchestrator->CommittedHighWater();
  ASSERT_TRUE(mark.ok());
  EXPECT_EQ(*mark, 3u);
  EXPECT_EQ(std::filesystem::file_size(ObservationJournal::FilePath(dir, function, 0)),
            0u);

  // New deferred work resumes with sequences strictly above the replayed
  // ones — a sequence the dedup would swallow is never reissued.
  ServiceClient client(&service, function, 0, /*defer_commit=*/true);
  const auto view = client.StartWorker();
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  for (uint64_t i = 0; i < 2; ++i) {
    ASSERT_TRUE(client.ServeRequest({i, 1.0}).ok());
  }
  (void)client.EndSession();
  ASSERT_TRUE(service.Drain().ok());

  const auto final_mark = stack.orchestrator->CommittedHighWater();
  ASSERT_TRUE(final_mark.ok());
  EXPECT_EQ(*final_mark, 5u);
  service.Shutdown();
}

// A replay whose records sit at or below the blob's high-water mark must be
// skipped record for record — the exactly-once dedup a kPreTruncate crash
// relies on, pinned here with hand-built journals so the counts are exact.
TEST(ServiceCrashTest, BindDedupsRecordsBelowHighWater) {
  const std::string dir = JournalDir("dedup");
  const std::string function = "dedup-fn";
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  FunctionStack stack(*policy, function, /*seed=*/555);

  ServiceConfig config;
  config.shards = 1;
  config.journal_dir = dir;

  // First incarnation: replaying seq 1..3 advances the mark to 3.
  {
    auto journal = ObservationJournal::Open(dir, function, 0);
    ASSERT_TRUE(journal.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE((*journal)->Append({seq, seq - 1, Duration::Millis(40)}).ok());
    }
  }
  {
    OrchestratorService service(config);
    ASSERT_TRUE(service.Bind(function, 0, stack.orchestrator.get(), &stack.clock).ok());
    EXPECT_EQ(service.stats().journal_replayed, 3u);
    service.Shutdown();
  }

  // Second incarnation finds a journal straddling the mark: a crash that
  // beat the truncate left seq 2..3 behind (already committed) alongside a
  // genuinely new seq 4.
  {
    auto journal = ObservationJournal::Open(dir, function, 0);
    ASSERT_TRUE(journal.ok());
    for (uint64_t seq = 2; seq <= 4; ++seq) {
      ASSERT_TRUE((*journal)->Append({seq, seq - 1, Duration::Millis(40)}).ok());
    }
  }
  OrchestratorService service(config);
  ASSERT_TRUE(service.Bind(function, 0, stack.orchestrator.get(), &stack.clock).ok());
  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.journal_deduped, 2u);   // seq 2, 3: covered by the mark.
  EXPECT_EQ(stats.journal_replayed, 1u);  // seq 4: committed exactly once.
  const auto mark = stack.orchestrator->CommittedHighWater();
  ASSERT_TRUE(mark.ok());
  EXPECT_EQ(*mark, 4u);
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Torn tails: partial and corrupt tail records are dropped, never misparsed.
// ---------------------------------------------------------------------------

TEST(ServiceCrashTest, RecoverDropsTornTail) {
  const std::string dir = JournalDir("torn_tail");
  {
    auto journal = ObservationJournal::Open(dir, "torn-fn", 0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append({1, 0, Duration::Millis(10)}).ok());
    ASSERT_TRUE((*journal)->Append({2, 1, Duration::Millis(20)}).ok());
  }
  const std::string path = ObservationJournal::FilePath(dir, "torn-fn", 0);

  // A crash mid-append: a length prefix promising more bytes than exist.
  {
    std::FILE* file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const uint8_t torn[] = {0x40, 0x00, 0x00, 0x00, 'P', 'h'};
    ASSERT_EQ(std::fwrite(torn, 1, sizeof(torn), file), sizeof(torn));
    std::fclose(file);
  }
  {
    auto journal = ObservationJournal::Open(dir, "torn-fn", 0);
    ASSERT_TRUE(journal.ok());
    const auto log = (*journal)->Recover();
    ASSERT_TRUE(log.ok()) << log.status().ToString();
    ASSERT_EQ(log->records.size(), 2u);
    EXPECT_EQ(log->records[0], (ObservationJournal::Record{1, 0, Duration::Millis(10)}));
    EXPECT_EQ(log->records[1], (ObservationJournal::Record{2, 1, Duration::Millis(20)}));
    EXPECT_GT(log->torn_tail_bytes, 0u);
    EXPECT_EQ((*journal)->MaxRecordedSequence(), 2u);
  }
}

TEST(ServiceCrashTest, RecoverDropsCorruptTailRecord) {
  const std::string dir = JournalDir("corrupt_tail");
  {
    auto journal = ObservationJournal::Open(dir, "corrupt-fn", 0);
    ASSERT_TRUE(journal.ok());
    for (uint64_t seq = 1; seq <= 3; ++seq) {
      ASSERT_TRUE((*journal)->Append({seq, seq, Duration::Millis(5)}).ok());
    }
  }
  const std::string path = ObservationJournal::FilePath(dir, "corrupt-fn", 0);

  // Flip the last byte — the tail record's CRC no longer matches.
  std::vector<uint8_t> bytes(std::filesystem::file_size(path));
  {
    std::FILE* file = std::fopen(path.c_str(), "rb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), file), bytes.size());
    std::fclose(file);
  }
  bytes.back() ^= 0xFF;
  {
    std::FILE* file = std::fopen(path.c_str(), "wb");
    ASSERT_NE(file, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), file), bytes.size());
    std::fclose(file);
  }

  auto journal = ObservationJournal::Open(dir, "corrupt-fn", 0);
  ASSERT_TRUE(journal.ok());
  const auto log = (*journal)->Recover();
  ASSERT_TRUE(log.ok());
  ASSERT_EQ(log->records.size(), 2u);
  EXPECT_EQ(log->records[1].sequence, 2u);
  EXPECT_GT(log->torn_tail_bytes, 0u);
}

TEST(ServiceCrashTest, BindCountsTornTail) {
  const std::string dir = JournalDir("bind_torn");
  const std::string function = "bind-torn-fn";
  {
    auto journal = ObservationJournal::Open(dir, function, 0);
    ASSERT_TRUE(journal.ok());
    ASSERT_TRUE((*journal)->Append({1, 0, Duration::Millis(10)}).ok());
  }
  {
    const std::string path = ObservationJournal::FilePath(dir, function, 0);
    std::FILE* file = std::fopen(path.c_str(), "ab");
    ASSERT_NE(file, nullptr);
    const uint8_t garbage[] = {0xDE, 0xAD, 0xBE};
    ASSERT_EQ(std::fwrite(garbage, 1, sizeof(garbage), file), sizeof(garbage));
    std::fclose(file);
  }

  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  FunctionStack stack(*policy, function, /*seed=*/31);
  ServiceConfig config;
  config.shards = 1;
  config.journal_dir = dir;
  OrchestratorService service(config);
  ASSERT_TRUE(service.Bind(function, 0, stack.orchestrator.get(), &stack.clock).ok());

  const ServiceStatsSnapshot stats = service.stats();
  EXPECT_EQ(stats.journal_torn_tails, 1u);
  EXPECT_EQ(stats.journal_replayed, 1u);  // The intact record still lands.
  service.Shutdown();
}

// ---------------------------------------------------------------------------
// Backpressure: stalled shard + full queue sheds start decisions.
// ---------------------------------------------------------------------------

TEST(ServiceCrashTest, ShedsStartDecisionsPastDeadline) {
  const auto policy = RequestCentricPolicy::Create(TestConfig());
  ASSERT_TRUE(policy.ok());
  FunctionStack stack(*policy, "shed-fn", /*seed=*/99);

  ServiceConfig config;
  config.shards = 1;
  config.queue_capacity = 1;
  config.shed_deadline_ms = 20;
  // The shard sleeps 2s of host time before its first envelope — the window
  // in which the fillers saturate the queue and the sheds fire.
  config.faults.stalls = {{.shard = 0, .at_op = 1, .wall_millis = 2000}};
  OrchestratorService service(config);
  ASSERT_TRUE(service.Bind(stack.name, 0, stack.orchestrator.get(), &stack.clock).ok());

  // Stalled envelope: a start decision the shard sits on for the window.
  std::thread stalled([&] {
    ServiceClient client(&service, stack.name, 0, /*defer_commit=*/false);
    const auto view = client.StartWorker();
    EXPECT_TRUE(view.ok()) << view.status().ToString();
    (void)client.EndSession();
  });
  // The stall counter is bumped before the sleep, so this poll observes the
  // window opening.
  while (service.stats().stalls_injected == 0) {
    std::this_thread::yield();
  }
  // Two fillers: plan probes always block (knowledge path), so one occupies
  // the single queue slot and the other waits in Push behind it.
  std::thread filler_a([&] {
    ServiceClient client(&service, stack.name, 0, /*defer_commit=*/false);
    (void)client.QueryPlan();
  });
  std::thread filler_b([&] {
    ServiceClient client(&service, stack.name, 0, /*defer_commit=*/false);
    (void)client.QueryPlan();
  });
  // No counter observes a push landing (requests counts on the shard side),
  // so give the fillers a generous slice of the 2s window to saturate the
  // queue before probing.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));

  // Without a fallback the shed surfaces as kResourceExhausted.
  ServiceClient plain(&service, stack.name, 0, /*defer_commit=*/false);
  const auto shed_view = plain.StartWorker();
  ASSERT_FALSE(shed_view.ok());
  EXPECT_EQ(shed_view.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.stats().sheds, 1u);

  // With a fallback the shed degrades into a local, unorchestrated cold
  // session: the start succeeds (marked degraded), requests execute
  // in-process, and EndSession retires it locally.
  ServiceClient degraded(&service, stack.name, 0, /*defer_commit=*/false);
  degraded.set_shed_fallback(&stack.profile, /*seed=*/1234);
  const auto degraded_view = degraded.StartWorker();
  ASSERT_TRUE(degraded_view.ok()) << degraded_view.status().ToString();
  EXPECT_TRUE(degraded_view->degraded);
  const auto outcome = degraded.ServeRequest({0, 1.0});
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  const SessionEnd end = degraded.EndSession();
  EXPECT_TRUE(end.retired);
  EXPECT_GT(end.memory_mb, 0.0);
  EXPECT_EQ(end.requests_executed, 1u);
  EXPECT_EQ(degraded.sheds_degraded(), 1u);
  EXPECT_EQ(service.stats().sheds, 2u);

  stalled.join();
  filler_a.join();
  filler_b.join();
  ASSERT_TRUE(service.Drain().ok());
  service.Shutdown();
}

}  // namespace
}  // namespace pronghorn
