// Wire-format properties of the orchestrator service protocol.
//
// Three contracts, pinned over randomized messages (common/rng, fixed seeds):
//   1. Round-trip identity: decode(encode(m)) re-encodes to the same bytes.
//   2. Truncation safety: every strict prefix of a valid frame is rejected.
//   3. Corruption safety: flipping ANY single bit of a frame is rejected
//      (the trailing CRC32 covers every preceding byte), reusing the
//      bit-rot primitive from src/store/fault_injection.

#include "src/service/wire.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "src/common/crc32.h"
#include "src/common/rng.h"
#include "src/store/fault_injection.h"

namespace pronghorn {
namespace {

std::string RandomFunctionName(Rng& rng) {
  const uint64_t length = 1 + rng.UniformUint64(24);
  std::string name;
  for (uint64_t i = 0; i < length; ++i) {
    name.push_back(static_cast<char>('a' + rng.UniformUint64(26)));
  }
  return name;
}

ServiceRequest RandomRequest(Rng& rng) {
  ServiceRequest request;
  const uint64_t kind = rng.UniformUint64(3);
  request.type = kind == 0   ? WireType::kStartDecision
                 : kind == 1 ? WireType::kObservation
                             : WireType::kCheckpointPlan;
  request.function = RandomFunctionName(rng);
  request.slot = static_cast<uint32_t>(rng.UniformUint64(1u << 16));
  if (request.type == WireType::kObservation) {
    request.request.id = rng.NextUint64() >> 8;
    request.request.input_scale = rng.UniformDouble() * 4.0;
    request.request.input_class = static_cast<uint32_t>(rng.UniformUint64(64));
    request.defer_commit = rng.UniformUint64(2) == 1;
  } else if (request.type == WireType::kCheckpointPlan) {
    request.retire = rng.UniformUint64(2) == 1;
  }
  return request;
}

Duration RandomDuration(Rng& rng) {
  return Duration::Micros(static_cast<int64_t>(rng.UniformUint64(1u << 30)));
}

ServiceResponse RandomResponse(Rng& rng) {
  ServiceResponse response;
  const uint64_t kind = rng.UniformUint64(4);
  if (kind == 0) {
    response.type = WireType::kStartAck;
    response.view.worker_id = rng.NextUint64() >> 8;
    response.view.restored = rng.UniformUint64(2) == 1;
    response.view.degraded = rng.UniformUint64(2) == 1;
    response.view.restored_from = rng.UniformUint64(1000);
    response.view.startup_latency = RandomDuration(rng);
    response.view.startup_overhead = RandomDuration(rng);
  } else if (kind == 1) {
    response.type = WireType::kObservationAck;
    response.outcome.latency = RandomDuration(rng);
    response.outcome.request_number = rng.UniformUint64(1u << 20);
    response.outcome.checkpoint_taken = rng.UniformUint64(2) == 1;
    response.outcome.checkpoint_downtime = RandomDuration(rng);
    response.outcome.request_overhead = RandomDuration(rng);
    response.outcome.checkpoint_overhead = RandomDuration(rng);
    response.committed = rng.UniformUint64(2) == 1;
  } else if (kind == 2) {
    response.type = WireType::kPlanAck;
    response.plan.live = rng.UniformUint64(2) == 1;
    response.plan.has_plan = rng.UniformUint64(2) == 1;
    response.plan.checkpoint_at = rng.UniformUint64(200);
    response.plan.requests_executed = rng.UniformUint64(1u << 20);
    response.plan.memory_mb = rng.UniformDouble() * 512.0;
    response.plan.retired = rng.UniformUint64(2) == 1;
  } else {
    response.type = WireType::kError;
    response.code =
        static_cast<StatusCode>(1 + rng.UniformUint64(11));  // Never kOk.
    response.message = RandomFunctionName(rng);
  }
  return response;
}

TEST(ServiceProtocolTest, RequestRoundTripIsIdentity) {
  Rng rng(101);
  for (int trial = 0; trial < 500; ++trial) {
    const ServiceRequest request = RandomRequest(rng);
    const std::vector<uint8_t> wire = EncodeServiceRequest(request);
    const auto decoded = DecodeServiceRequest(wire);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->type, request.type);
    EXPECT_EQ(decoded->function, request.function);
    EXPECT_EQ(decoded->slot, request.slot);
    // Re-encoding the decoded message must reproduce the exact frame — the
    // strongest identity check, covering every field of every type.
    EXPECT_EQ(EncodeServiceRequest(*decoded), wire) << "trial " << trial;
  }
}

TEST(ServiceProtocolTest, ResponseRoundTripIsIdentity) {
  Rng rng(202);
  for (int trial = 0; trial < 500; ++trial) {
    const ServiceResponse response = RandomResponse(rng);
    const std::vector<uint8_t> wire = EncodeServiceResponse(response);
    const auto decoded = DecodeServiceResponse(wire);
    ASSERT_TRUE(decoded.ok()) << "trial " << trial << ": "
                              << decoded.status().ToString();
    EXPECT_EQ(decoded->type, response.type);
    EXPECT_EQ(EncodeServiceResponse(*decoded), wire) << "trial " << trial;
  }
}

TEST(ServiceProtocolTest, EveryTruncationIsRejected) {
  Rng rng(303);
  for (int trial = 0; trial < 20; ++trial) {
    const std::vector<uint8_t> wire = EncodeServiceRequest(RandomRequest(rng));
    for (size_t length = 0; length < wire.size(); ++length) {
      const auto truncated =
          DecodeServiceRequest(std::span<const uint8_t>(wire.data(), length));
      EXPECT_FALSE(truncated.ok()) << "prefix of length " << length << " accepted";
    }
  }
}

TEST(ServiceProtocolTest, EverySingleBitFlipIsRejected) {
  // Exhaustive, not sampled: the CRC32 frame check must catch a flip at any
  // bit position — body, header, or the checksum itself.
  Rng rng(404);
  for (int trial = 0; trial < 10; ++trial) {
    const std::vector<uint8_t> wire = EncodeServiceRequest(RandomRequest(rng));
    for (size_t bit = 0; bit < wire.size() * 8; ++bit) {
      std::vector<uint8_t> corrupted = wire;
      corrupted[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
      EXPECT_FALSE(DecodeServiceRequest(corrupted).ok())
          << "bit " << bit << " flip accepted";
    }
  }
}

TEST(ServiceProtocolTest, RandomBitRotFromFaultInjectionIsRejected) {
  // The same primitive the chaos layer uses for blob corruption
  // (FaultyObjectStore's corruption_rate) must never slip through the frame
  // check either.
  Rng rng(505);
  for (int trial = 0; trial < 300; ++trial) {
    std::vector<uint8_t> wire = EncodeServiceResponse(RandomResponse(rng));
    FlipRandomBit(wire, rng);
    EXPECT_FALSE(DecodeServiceResponse(wire).ok()) << "trial " << trial;
  }
}

TEST(ServiceProtocolTest, TrailingBytesAreRejected) {
  Rng rng(606);
  std::vector<uint8_t> wire = EncodeServiceRequest(RandomRequest(rng));
  wire.push_back(0);
  EXPECT_FALSE(DecodeServiceRequest(wire).ok());
}

TEST(ServiceProtocolTest, RequestAndResponseFramesAreNotInterchangeable) {
  Rng rng(707);
  const std::vector<uint8_t> request_wire = EncodeServiceRequest(RandomRequest(rng));
  const std::vector<uint8_t> response_wire =
      EncodeServiceResponse(RandomResponse(rng));
  EXPECT_FALSE(DecodeServiceResponse(request_wire).ok());
  EXPECT_FALSE(DecodeServiceRequest(response_wire).ok());
}

TEST(ServiceProtocolTest, WrongMagicAndVersionAreRejected) {
  ServiceRequest request;
  request.type = WireType::kStartDecision;
  request.function = "f";
  std::vector<uint8_t> wire = EncodeServiceRequest(request);

  // Patch the version byte and re-seal the CRC so only the version is wrong.
  std::vector<uint8_t> bad_version = wire;
  bad_version[4] = kWireVersion + 1;
  const uint32_t crc = Crc32(
      std::span<const uint8_t>(bad_version.data(), bad_version.size() - 4));
  for (int i = 0; i < 4; ++i) {
    bad_version[bad_version.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(crc >> (8 * i));
  }
  const auto version_result = DecodeServiceRequest(bad_version);
  ASSERT_FALSE(version_result.ok());
  EXPECT_EQ(version_result.status().code(), StatusCode::kInvalidArgument);

  // A wrong magic fails even with a matching CRC.
  std::vector<uint8_t> bad_magic = wire;
  bad_magic[0] ^= 0xff;
  const uint32_t magic_crc =
      Crc32(std::span<const uint8_t>(bad_magic.data(), bad_magic.size() - 4));
  for (int i = 0; i < 4; ++i) {
    bad_magic[bad_magic.size() - 4 + static_cast<size_t>(i)] =
        static_cast<uint8_t>(magic_crc >> (8 * i));
  }
  const auto magic_result = DecodeServiceRequest(bad_magic);
  ASSERT_FALSE(magic_result.ok());
  EXPECT_EQ(magic_result.status().code(), StatusCode::kDataLoss);
}

}  // namespace
}  // namespace pronghorn
