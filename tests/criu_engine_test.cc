#include "src/checkpoint/criu_like_engine.h"

#include <gtest/gtest.h>

#include "src/common/stats.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

RuntimeProcess WarmProcess(const char* name, uint64_t requests, uint64_t seed) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile(name), seed);
  for (uint64_t i = 0; i < requests; ++i) {
    process.Execute({i, 1.0});
  }
  return process;
}

TEST(CriuLikeEngineTest, CheckpointRestorePreservesMaturity) {
  CriuLikeEngine engine(1);
  RuntimeProcess process = WarmProcess("DynamicHTML", 75, 10);

  auto checkpoint = engine.Checkpoint(process, SnapshotId{5}, TimePoint::FromMicros(99));
  ASSERT_TRUE(checkpoint.ok()) << checkpoint.status().ToString();
  EXPECT_EQ(checkpoint->image.metadata().request_number, 75u);
  EXPECT_EQ(checkpoint->image.metadata().function, "DynamicHTML");
  EXPECT_EQ(checkpoint->image.metadata().id.value, 5u);
  EXPECT_EQ(checkpoint->image.metadata().created_at, TimePoint::FromMicros(99));

  auto restored = engine.Restore(checkpoint->image, WorkloadRegistry::Default());
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored->process.requests_executed(), 75u);
  EXPECT_EQ(restored->process.profile().name, "DynamicHTML");
  // Tier distribution carried over: a 75-request process is partially warm.
  EXPECT_GT(restored->process.CountAtTier(CompilationTier::kBaseline) +
                restored->process.CountAtTier(CompilationTier::kOptimized),
            0u);
}

TEST(CriuLikeEngineTest, RejectsReservedIdZero) {
  CriuLikeEngine engine(2);
  RuntimeProcess process = WarmProcess("Hash", 5, 11);
  auto checkpoint = engine.Checkpoint(process, SnapshotId{0}, TimePoint());
  EXPECT_EQ(checkpoint.status().code(), StatusCode::kInvalidArgument);
}

TEST(CriuLikeEngineTest, CostsFollowTable4Model) {
  CriuLikeEngine engine(3);
  const WorkloadProfile& profile = Profile("Compression");  // 105ms / 39.1ms.
  RuntimeProcess process = WarmProcess("Compression", 20, 12);

  OnlineStats checkpoint_ms;
  OnlineStats restore_ms;
  for (int i = 0; i < 50; ++i) {
    auto checkpoint = engine.Checkpoint(process, SnapshotId{100 + static_cast<uint64_t>(i)},
                                        TimePoint());
    ASSERT_TRUE(checkpoint.ok());
    checkpoint_ms.Add(checkpoint->downtime.ToMillis());
    auto restored = engine.Restore(checkpoint->image, WorkloadRegistry::Default());
    ASSERT_TRUE(restored.ok());
    restore_ms.Add(restored->restore_time.ToMillis());
  }
  EXPECT_NEAR(checkpoint_ms.mean(), profile.checkpoint_mean.ToMillis(), 4.0);
  EXPECT_NEAR(restore_ms.mean(), profile.restore_mean.ToMillis(), 2.0);
  // CRIU never completes instantaneously.
  EXPECT_GE(checkpoint_ms.min(), 5.0);
  EXPECT_GE(restore_ms.min(), 5.0);
}

TEST(CriuLikeEngineTest, LogicalSizeTracksFootprint) {
  CriuLikeEngine engine(4);
  RuntimeProcess process = WarmProcess("BFS", 400, 13);
  auto checkpoint = engine.Checkpoint(process, SnapshotId{7}, TimePoint());
  ASSERT_TRUE(checkpoint.ok());
  const double mb = static_cast<double>(checkpoint->image.metadata().logical_size_bytes) /
                    (1024.0 * 1024.0);
  EXPECT_NEAR(mb, process.MemoryFootprintMb(), 0.01);
  EXPECT_GT(mb, 40.0);  // Python snapshots are ~55 MB.
}

TEST(CriuLikeEngineTest, RestoreDetectsCorruptPayload) {
  CriuLikeEngine engine(5);
  RuntimeProcess process = WarmProcess("MST", 30, 14);
  auto checkpoint = engine.Checkpoint(process, SnapshotId{9}, TimePoint());
  ASSERT_TRUE(checkpoint.ok());

  // Rebuild an image whose metadata disagrees with the serialized state.
  SnapshotMetadata forged = checkpoint->image.metadata();
  forged.request_number = 999;
  SnapshotImage forged_image(forged, checkpoint->image.payload());
  auto restored = engine.Restore(forged_image, WorkloadRegistry::Default());
  EXPECT_EQ(restored.status().code(), StatusCode::kDataLoss);
}

TEST(CriuLikeEngineTest, RestoredProcessesDivergeFromEachOther) {
  CriuLikeEngine engine(6);
  RuntimeProcess process = WarmProcess("WordCount", 40, 15);
  auto checkpoint = engine.Checkpoint(process, SnapshotId{11}, TimePoint());
  ASSERT_TRUE(checkpoint.ok());

  auto a = engine.Restore(checkpoint->image, WorkloadRegistry::Default());
  auto b = engine.Restore(checkpoint->image, WorkloadRegistry::Default());
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  // Two workers from one snapshot must not replay identical futures (§2:
  // JIT compilation is not deterministic).
  bool diverged = false;
  for (uint64_t i = 0; i < 100 && !diverged; ++i) {
    diverged = a->process.Execute({i, 1.0}).latency != b->process.Execute({i, 1.0}).latency;
  }
  EXPECT_TRUE(diverged);
}

TEST(CriuLikeEngineTest, CountersAccumulate) {
  CriuLikeEngine engine(7);
  RuntimeProcess process = WarmProcess("DFS", 10, 16);
  EXPECT_EQ(engine.checkpoints_taken(), 0u);
  EXPECT_EQ(engine.restores_performed(), 0u);

  auto c1 = engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  auto c2 = engine.Checkpoint(process, SnapshotId{2}, TimePoint());
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE(c2.ok());
  ASSERT_TRUE(engine.Restore(c1->image, WorkloadRegistry::Default()).ok());

  EXPECT_EQ(engine.checkpoints_taken(), 2u);
  EXPECT_EQ(engine.restores_performed(), 1u);
  EXPECT_EQ(engine.total_checkpoint_time(), c1->downtime + c2->downtime);
  EXPECT_GT(engine.total_restore_time(), Duration::Zero());
}

TEST(CriuLikeEngineTest, FullImageWireRoundTrip) {
  // Checkpoint -> Encode -> Decode -> Restore, the exact path a snapshot
  // takes through the object store.
  CriuLikeEngine engine(8);
  RuntimeProcess process = WarmProcess("PageRank", 120, 17);
  auto checkpoint = engine.Checkpoint(process, SnapshotId{31}, TimePoint());
  ASSERT_TRUE(checkpoint.ok());

  const std::vector<uint8_t> wire = checkpoint->image.Encode();
  auto decoded = SnapshotImage::Decode(wire);
  ASSERT_TRUE(decoded.ok());
  auto restored = engine.Restore(*decoded, WorkloadRegistry::Default());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->process.requests_executed(), 120u);
}

}  // namespace
}  // namespace pronghorn
