#include "src/checkpoint/delta_engine.h"

#include <gtest/gtest.h>

#include "src/common/stats.h"
#include "src/core/orchestrator.h"
#include "src/core/request_centric_policy.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

RuntimeProcess WarmProcess(const char* name, uint64_t requests, uint64_t seed) {
  RuntimeProcess process = RuntimeProcess::ColdStart(Profile(name), seed);
  for (uint64_t i = 0; i < requests; ++i) {
    process.Execute({i, 1.0});
  }
  return process;
}

TEST(DeltaCheckpointEngineTest, FirstSnapshotIsFullBase) {
  DeltaCheckpointEngine engine(1);
  RuntimeProcess process = WarmProcess("BFS", 50, 1);
  EXPECT_FALSE(engine.HasBase("BFS"));
  auto checkpoint = engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  ASSERT_TRUE(checkpoint.ok());
  EXPECT_TRUE(engine.HasBase("BFS"));
  const double mb = static_cast<double>(checkpoint->image.metadata().logical_size_bytes) /
                    1048576.0;
  EXPECT_NEAR(mb, process.MemoryFootprintMb(), 0.01);
}

TEST(DeltaCheckpointEngineTest, SubsequentSnapshotsAreSmallDeltas) {
  DeltaCheckpointEngine engine(2);
  RuntimeProcess process = WarmProcess("BFS", 50, 2);
  auto base = engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  ASSERT_TRUE(base.ok());
  for (uint64_t i = 0; i < 20; ++i) {
    process.Execute({100 + i, 1.0});
  }
  auto delta = engine.Checkpoint(process, SnapshotId{2}, TimePoint());
  ASSERT_TRUE(delta.ok());
  const double ratio =
      static_cast<double>(delta->image.metadata().logical_size_bytes) /
      static_cast<double>(base->image.metadata().logical_size_bytes);
  EXPECT_NEAR(ratio, 0.12, 0.02);
}

TEST(DeltaCheckpointEngineTest, DeltaCheckpointsAreFaster) {
  DeltaCheckpointEngine engine(3);
  RuntimeProcess process = WarmProcess("Compression", 30, 3);  // 105ms mean.
  auto base = engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  ASSERT_TRUE(base.ok());
  OnlineStats delta_ms;
  for (int i = 0; i < 30; ++i) {
    auto delta = engine.Checkpoint(process, SnapshotId{10 + static_cast<uint64_t>(i)},
                                   TimePoint());
    ASSERT_TRUE(delta.ok());
    delta_ms.Add(delta->downtime.ToMillis());
  }
  // ~35% of the 105ms full checkpoint.
  EXPECT_NEAR(delta_ms.mean(), 105.0 * 0.35, 8.0);
}

TEST(DeltaCheckpointEngineTest, RestorePaysPatchOverhead) {
  DeltaCheckpointEngine delta_engine(4);
  RuntimeProcess process = WarmProcess("Uploader", 30, 4);  // 30.2ms restore.
  auto checkpoint = delta_engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  ASSERT_TRUE(checkpoint.ok());
  OnlineStats restore_ms;
  for (int i = 0; i < 40; ++i) {
    auto restored = delta_engine.Restore(checkpoint->image, WorkloadRegistry::Default());
    ASSERT_TRUE(restored.ok());
    restore_ms.Add(restored->restore_time.ToMillis());
  }
  EXPECT_NEAR(restore_ms.mean(), 30.2 * 1.15, 3.0);
}

TEST(DeltaCheckpointEngineTest, BasesAreTrackedPerFunction) {
  DeltaCheckpointEngine engine(5);
  RuntimeProcess bfs = WarmProcess("BFS", 20, 5);
  RuntimeProcess mst = WarmProcess("MST", 20, 6);
  ASSERT_TRUE(engine.Checkpoint(bfs, SnapshotId{1}, TimePoint()).ok());
  EXPECT_TRUE(engine.HasBase("BFS"));
  EXPECT_FALSE(engine.HasBase("MST"));
  // MST's first snapshot is still a full base.
  auto mst_base = engine.Checkpoint(mst, SnapshotId{2}, TimePoint());
  ASSERT_TRUE(mst_base.ok());
  const double mb = static_cast<double>(mst_base->image.metadata().logical_size_bytes) /
                    1048576.0;
  EXPECT_GT(mb, 40.0);
}

TEST(DeltaCheckpointEngineTest, RoundTripPreservesState) {
  DeltaCheckpointEngine engine(6);
  RuntimeProcess process = WarmProcess("DynamicHTML", 80, 7);
  auto base = engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  ASSERT_TRUE(base.ok());
  auto delta = engine.Checkpoint(process, SnapshotId{2}, TimePoint());
  ASSERT_TRUE(delta.ok());
  // Deltas still restore to the complete process state.
  auto restored = engine.Restore(delta->image, WorkloadRegistry::Default());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->process.requests_executed(), 80u);
}

TEST(DeltaCheckpointEngineTest, WorksAsDropInForOrchestration) {
  // §4 agnosticism: the orchestrator runs unchanged on the delta engine, and
  // cumulative upload traffic collapses because only the first snapshot is a
  // full image.
  const WorkloadProfile& profile = Profile("BFS");
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  const auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  SimClock clock;
  InMemoryKvDatabase db;
  InMemoryObjectStore object_store;
  DeltaCheckpointEngine engine(9);
  PolicyStateStore state_store(db, profile.name, config);
  FlatSnapshotStore snapshot_store(object_store);
  Orchestrator orchestrator(profile, WorkloadRegistry::Default(), *policy, engine,
                            snapshot_store, state_store, clock, /*seed=*/10);

  for (int lifetime = 0; lifetime < 10; ++lifetime) {
    auto session = orchestrator.StartWorker();
    ASSERT_TRUE(session.ok());
    for (uint64_t i = 1; i <= 4; ++i) {
      ASSERT_TRUE(orchestrator.ServeRequest(*session, {i, 1.0}).ok());
    }
  }
  EXPECT_GT(engine.checkpoints_taken(), 3u);
  EXPECT_GT(engine.restores_performed(), 0u);
  // Uploads: 1 full base (~53 MB) + N deltas (~6 MB each) — far below N
  // full images.
  const double uploaded_mb =
      static_cast<double>(object_store.accounting().network_bytes_uploaded) / 1048576.0;
  const double full_images_mb =
      profile.snapshot_mb * static_cast<double>(engine.checkpoints_taken());
  EXPECT_LT(uploaded_mb, full_images_mb * 0.5);
}

TEST(DeltaCheckpointEngineTest, RejectsReservedIdAndCorruptMetadata) {
  DeltaCheckpointEngine engine(7);
  RuntimeProcess process = WarmProcess("Hash", 10, 8);
  EXPECT_FALSE(engine.Checkpoint(process, SnapshotId{0}, TimePoint()).ok());

  auto checkpoint = engine.Checkpoint(process, SnapshotId{1}, TimePoint());
  ASSERT_TRUE(checkpoint.ok());
  SnapshotMetadata forged = checkpoint->image.metadata();
  forged.request_number = 12345;
  SnapshotImage forged_image(forged, checkpoint->image.payload());
  EXPECT_EQ(engine.Restore(forged_image, WorkloadRegistry::Default()).status().code(),
            StatusCode::kDataLoss);
}

}  // namespace
}  // namespace pronghorn
