#include "src/platform/function_simulation.h"

#include <gtest/gtest.h>

#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"

namespace pronghorn {
namespace {

const WorkloadProfile& Profile(const char* name) {
  auto result = WorkloadRegistry::Default().Find(name);
  EXPECT_TRUE(result.ok());
  return **result;
}

PolicyConfig TestConfig(uint32_t beta) {
  PolicyConfig config;
  config.beta = beta;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  return config;
}

TEST(FunctionSimulationTest, ClosedLoopProducesOneRecordPerRequest) {
  const ColdStartPolicy policy;
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  FunctionSimulation sim(Profile("DynamicHTML"), WorkloadRegistry::Default(), policy,
                         **eviction, SimOptions{});
  auto report = sim.RunClosedLoop(100);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->records.size(), 100u);
  for (size_t i = 0; i < report->records.size(); ++i) {
    EXPECT_EQ(report->records[i].global_index, i);
    EXPECT_GT(report->records[i].latency, Duration::Zero());
  }
}

TEST(FunctionSimulationTest, EvictionEveryKBoundsLifetimes) {
  const ColdStartPolicy policy;
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  FunctionSimulation sim(Profile("DynamicHTML"), WorkloadRegistry::Default(), policy,
                         **eviction, SimOptions{});
  auto report = sim.RunClosedLoop(100);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->worker_lifetimes, 25u);
  EXPECT_EQ(report->cold_starts, 25u);  // Cold policy never restores.
  EXPECT_EQ(report->restores, 0u);
  // Every 4th record begins a new lifetime.
  for (size_t i = 0; i < report->records.size(); ++i) {
    EXPECT_EQ(report->records[i].first_of_lifetime, i % 4 == 0) << i;
  }
}

TEST(FunctionSimulationTest, ColdPolicyMaturityResetsPerLifetime) {
  const ColdStartPolicy policy;
  auto eviction = EveryKRequestsEviction::Create(3);
  ASSERT_TRUE(eviction.ok());
  FunctionSimulation sim(Profile("Hash"), WorkloadRegistry::Default(), policy,
                         **eviction, SimOptions{});
  auto report = sim.RunClosedLoop(30);
  ASSERT_TRUE(report.ok());
  for (size_t i = 0; i < report->records.size(); ++i) {
    EXPECT_EQ(report->records[i].request_number, i % 3 + 1) << i;
  }
}

TEST(FunctionSimulationTest, AfterFirstPolicyPinsMaturity) {
  const CheckpointAfterFirstPolicy policy{TestConfig(1)};
  auto eviction = EveryKRequestsEviction::Create(1);
  ASSERT_TRUE(eviction.ok());
  FunctionSimulation sim(Profile("Hash"), WorkloadRegistry::Default(), policy,
                         **eviction, SimOptions{});
  auto report = sim.RunClosedLoop(50);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->checkpoints, 1u);
  EXPECT_EQ(report->cold_starts, 1u);
  EXPECT_EQ(report->restores, 49u);
  // Every post-snapshot request executes at maturity 2, forever.
  for (size_t i = 1; i < report->records.size(); ++i) {
    EXPECT_EQ(report->records[i].request_number, 2u) << i;
  }
}

TEST(FunctionSimulationTest, RequestCentricMaturityGrowsOverTime) {
  const auto policy = RequestCentricPolicy::Create(TestConfig(1));
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(1);
  ASSERT_TRUE(eviction.ok());
  FunctionSimulation sim(Profile("DynamicHTML"), WorkloadRegistry::Default(), *policy,
                         **eviction, SimOptions{});
  auto report = sim.RunClosedLoop(400);
  ASSERT_TRUE(report.ok());
  // The request-number chain must reach the W boundary through exploration.
  uint64_t max_maturity = 0;
  for (const RequestRecord& record : report->records) {
    max_maturity = std::max(max_maturity, record.request_number);
  }
  EXPECT_GE(max_maturity, 100u);
  // And late requests should mostly run at high maturity.
  uint64_t late_sum = 0;
  for (size_t i = 350; i < 400; ++i) {
    late_sum += report->records[i].request_number;
  }
  EXPECT_GT(late_sum / 50, 60u);
}

TEST(FunctionSimulationTest, DeterministicAcrossRuns) {
  const auto policy = RequestCentricPolicy::Create(TestConfig(4));
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions options;
  options.seed = 1234;

  FunctionSimulation sim_a(Profile("MST"), WorkloadRegistry::Default(), *policy,
                           **eviction, options);
  FunctionSimulation sim_b(Profile("MST"), WorkloadRegistry::Default(), *policy,
                           **eviction, options);
  auto report_a = sim_a.RunClosedLoop(150);
  auto report_b = sim_b.RunClosedLoop(150);
  ASSERT_TRUE(report_a.ok());
  ASSERT_TRUE(report_b.ok());
  ASSERT_EQ(report_a->records.size(), report_b->records.size());
  for (size_t i = 0; i < report_a->records.size(); ++i) {
    EXPECT_EQ(report_a->records[i].latency, report_b->records[i].latency) << i;
    EXPECT_EQ(report_a->records[i].request_number, report_b->records[i].request_number);
  }
}

TEST(FunctionSimulationTest, SeedsChangeOutcomes) {
  const auto policy = RequestCentricPolicy::Create(TestConfig(4));
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  SimOptions a;
  a.seed = 1;
  SimOptions b;
  b.seed = 2;
  FunctionSimulation sim_a(Profile("MST"), WorkloadRegistry::Default(), *policy,
                           **eviction, a);
  FunctionSimulation sim_b(Profile("MST"), WorkloadRegistry::Default(), *policy,
                           **eviction, b);
  auto report_a = sim_a.RunClosedLoop(50);
  auto report_b = sim_b.RunClosedLoop(50);
  ASSERT_TRUE(report_a.ok());
  ASSERT_TRUE(report_b.ok());
  bool any_difference = false;
  for (size_t i = 0; i < 50; ++i) {
    any_difference |= report_a->records[i].latency != report_b->records[i].latency;
  }
  EXPECT_TRUE(any_difference);
}

TEST(FunctionSimulationTest, StartupOnCriticalPathInflatesFirstRequests) {
  const ColdStartPolicy policy;
  auto eviction = EveryKRequestsEviction::Create(5);
  ASSERT_TRUE(eviction.ok());

  SimOptions off_path;
  off_path.seed = 9;
  off_path.input_noise = false;
  SimOptions on_path = off_path;
  on_path.lifecycle.startup_on_critical_path = true;

  FunctionSimulation sim_off(Profile("Hash"), WorkloadRegistry::Default(), policy,
                             **eviction, off_path);
  FunctionSimulation sim_on(Profile("Hash"), WorkloadRegistry::Default(), policy,
                            **eviction, on_path);
  auto report_off = sim_off.RunClosedLoop(20);
  auto report_on = sim_on.RunClosedLoop(20);
  ASSERT_TRUE(report_off.ok());
  ASSERT_TRUE(report_on.ok());

  const Duration cold_init = Profile("Hash").cold_init;
  for (size_t i = 0; i < 20; ++i) {
    const Duration off_latency = report_off->records[i].latency;
    const Duration on_latency = report_on->records[i].latency;
    if (report_on->records[i].first_of_lifetime) {
      EXPECT_GE(on_latency, cold_init);
      EXPECT_EQ(on_latency, off_latency + cold_init);
    } else {
      EXPECT_EQ(on_latency, off_latency);
    }
  }
}

TEST(FunctionSimulationTest, TraceRejectsUnsortedArrivals) {
  const ColdStartPolicy policy;
  IdleTimeoutEviction eviction(Duration::Seconds(600));
  FunctionSimulation sim(Profile("MST"), WorkloadRegistry::Default(), policy, eviction,
                         SimOptions{});
  const std::vector<TimePoint> arrivals = {TimePoint::FromMicros(100),
                                           TimePoint::FromMicros(50)};
  EXPECT_EQ(sim.RunTrace(arrivals).status().code(), StatusCode::kInvalidArgument);
}

TEST(FunctionSimulationTest, TraceIdleTimeoutEvicts) {
  const ColdStartPolicy policy;
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  SimOptions options;
  options.input_noise = false;
  FunctionSimulation sim(Profile("DynamicHTML"), WorkloadRegistry::Default(), policy,
                         eviction, options);
  // Three bursts separated by gaps beyond the 60s timeout.
  std::vector<TimePoint> arrivals;
  for (int burst = 0; burst < 3; ++burst) {
    const int64_t base = burst * 300 * 1000000LL;
    for (int i = 0; i < 4; ++i) {
      arrivals.push_back(TimePoint::FromMicros(base + i * 1000000LL));
    }
  }
  auto report = sim.RunTrace(arrivals);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->worker_lifetimes, 3u);
  EXPECT_EQ(report->records.size(), 12u);
}

TEST(FunctionSimulationTest, TraceQueueingDelaysBackToBackArrivals) {
  const ColdStartPolicy policy;
  IdleTimeoutEviction eviction(Duration::Seconds(600));
  SimOptions options;
  options.input_noise = false;
  FunctionSimulation sim(Profile("Video"), WorkloadRegistry::Default(), policy,
                         eviction, options);
  // Two arrivals 1ms apart; Video takes seconds, so the second queues.
  const std::vector<TimePoint> arrivals = {TimePoint::FromMicros(0),
                                           TimePoint::FromMicros(1000)};
  auto report = sim.RunTrace(arrivals);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->records.size(), 2u);
  EXPECT_GT(report->records[1].latency,
            report->records[0].latency - Duration::Millis(500));
}

TEST(FunctionSimulationTest, ReportAccountingIsConsistent) {
  const auto policy = RequestCentricPolicy::Create(TestConfig(4));
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(eviction.ok());
  FunctionSimulation sim(Profile("BFS"), WorkloadRegistry::Default(), *policy,
                         **eviction, SimOptions{});
  auto report = sim.RunClosedLoop(200);
  ASSERT_TRUE(report.ok());

  EXPECT_EQ(report->worker_lifetimes, report->cold_starts + report->restores);
  EXPECT_EQ(report->overheads.requests_served, 200u);
  EXPECT_EQ(report->overheads.worker_starts, report->worker_lifetimes);
  EXPECT_EQ(report->overheads.checkpoints_taken, report->checkpoints);
  EXPECT_EQ(report->checkpoints, sim.engine().checkpoints_taken());
  EXPECT_EQ(report->restores, sim.engine().restores_performed());
  // Uploads happened for every checkpoint; pool bounded by C.
  EXPECT_EQ(report->object_store.put_count, report->checkpoints);
  auto state = sim.LoadPolicyState();
  ASSERT_TRUE(state.ok());
  EXPECT_LE(state->pool.size(), 12u);
  EXPECT_GT(report->end_time.ToMicros(), 0);
}

TEST(FunctionSimulationTest, CheckpointBlockingDelaysQueuedArrival) {
  // With checkpoint_blocks_requests, a request arriving during the
  // checkpoint downtime waits for it; otherwise checkpointing is invisible.
  const auto policy = RequestCentricPolicy::Create(TestConfig(2));
  ASSERT_TRUE(policy.ok());
  auto eviction = EveryKRequestsEviction::Create(100);
  ASSERT_TRUE(eviction.ok());

  // Two arrivals 1ms apart: the first triggers a checkpoint (cold worker
  // plans one within beta=2... may land on request 1 or 2), the second
  // queues right behind it.
  const std::vector<TimePoint> arrivals = {TimePoint::FromMicros(0),
                                           TimePoint::FromMicros(1000)};
  Duration latency_no_block;
  Duration latency_block;
  for (bool blocks : {false, true}) {
    SimOptions options;
    options.seed = 99;
    options.input_noise = false;
    options.lifecycle.checkpoint_blocks_requests = blocks;
    FunctionSimulation sim(Profile("DynamicHTML"), WorkloadRegistry::Default(),
                           *policy, **eviction, options);
    auto report = sim.RunTrace(arrivals);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->records.size(), 2u);
    // Only meaningful when the checkpoint fired on the first request.
    if (!report->records[0].checkpoint_after) {
      return;  // Plan landed on request 2; nothing to compare this seed.
    }
    (blocks ? latency_block : latency_no_block) = report->records[1].latency;
  }
  // CRIU downtime is ~75ms for DynamicHTML; the blocked arrival pays it.
  EXPECT_GT(latency_block, latency_no_block + Duration::Millis(30));
}

TEST(FunctionSimulationTest, WorkerOccupancyAccounting) {
  const ColdStartPolicy policy;
  IdleTimeoutEviction eviction(Duration::Seconds(60));
  SimOptions options;
  options.input_noise = false;
  options.lifecycle.idle_resource_hold = eviction.timeout();
  FunctionSimulation sim(Profile("DynamicHTML"), WorkloadRegistry::Default(), policy,
                         eviction, options);
  // Two bursts of 3 back-to-back requests separated by a 10-minute gap: the
  // worker is evicted once (holding memory for the 60s idle hold) and the
  // final worker is accounted up to the end of the run.
  std::vector<TimePoint> arrivals;
  for (int burst = 0; burst < 2; ++burst) {
    const int64_t base = burst * 600 * 1000000LL;
    for (int i = 0; i < 3; ++i) {
      arrivals.push_back(TimePoint::FromMicros(base + i * 100000LL));
    }
  }
  auto report = sim.RunTrace(arrivals);
  ASSERT_TRUE(report.ok());
  EXPECT_EQ(report->worker_lifetimes, 2u);
  // First worker: ~0.3s serving + 60s idle hold; second: ~0.3s to run end.
  const double alive_s = report->total_worker_alive_time.ToSeconds();
  EXPECT_GT(alive_s, 60.0);
  EXPECT_LT(alive_s, 75.0);
  // Memory-time is alive time weighted by the ~52 MB footprint.
  EXPECT_NEAR(report->worker_memory_time_mb_s / alive_s, 52.0, 6.0);
}

TEST(FunctionSimulationTest, OccupancyScalesWithIdleHold) {
  const ColdStartPolicy policy;
  IdleTimeoutEviction eviction(Duration::Seconds(300));
  std::vector<TimePoint> arrivals;
  for (int i = 0; i < 5; ++i) {
    arrivals.push_back(TimePoint::FromMicros(i * 600 * 1000000LL));  // 10-min gaps.
  }
  double memory_time[2];
  int idx = 0;
  for (int64_t hold_s : {0, 300}) {
    SimOptions options;
    options.input_noise = false;
    options.lifecycle.idle_resource_hold = Duration::Seconds(static_cast<double>(hold_s));
    FunctionSimulation sim(Profile("DynamicHTML"), WorkloadRegistry::Default(), policy,
                           eviction, options);
    auto report = sim.RunTrace(arrivals);
    ASSERT_TRUE(report.ok());
    memory_time[idx++] = report->worker_memory_time_mb_s;
  }
  EXPECT_GT(memory_time[1], memory_time[0] * 10);
}

TEST(FunctionSimulationTest, InputNoiseWidensDistribution) {
  const ColdStartPolicy policy;
  auto eviction = EveryKRequestsEviction::Create(20);
  ASSERT_TRUE(eviction.ok());
  SimOptions noisy;
  noisy.seed = 5;
  SimOptions quiet = noisy;
  quiet.input_noise = false;

  FunctionSimulation sim_noisy(Profile("PageRank"), WorkloadRegistry::Default(), policy,
                               **eviction, noisy);
  FunctionSimulation sim_quiet(Profile("PageRank"), WorkloadRegistry::Default(), policy,
                               **eviction, quiet);
  auto report_noisy = sim_noisy.RunClosedLoop(300);
  auto report_quiet = sim_quiet.RunClosedLoop(300);
  ASSERT_TRUE(report_noisy.ok());
  ASSERT_TRUE(report_quiet.ok());

  const auto noisy_summary = report_noisy->LatencySummary();
  const auto quiet_summary = report_quiet->LatencySummary();
  const double noisy_iqr = noisy_summary.Quantile(75) / noisy_summary.Quantile(25);
  const double quiet_iqr = quiet_summary.Quantile(75) / quiet_summary.Quantile(25);
  EXPECT_GT(noisy_iqr, quiet_iqr * 2.0);
  // Footnote 4: compute-bound IQR spans over an order of magnitude.
  EXPECT_GT(noisy_iqr, 5.0);
}

}  // namespace
}  // namespace pronghorn
