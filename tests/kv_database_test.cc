#include "src/store/kv_database.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace pronghorn {
namespace {

std::vector<uint8_t> Value(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

std::string AsString(const std::vector<uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

TEST(KvDatabaseTest, PutGetRoundTrip) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("key", Value("hello")).ok());
  auto got = db.Get("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(AsString(*got), "hello");
}

TEST(KvDatabaseTest, GetMissingIsNotFound) {
  InMemoryKvDatabase db;
  EXPECT_EQ(db.Get("missing").status().code(), StatusCode::kNotFound);
}

TEST(KvDatabaseTest, EmptyKeyRejected) {
  InMemoryKvDatabase db;
  EXPECT_EQ(db.Put("", Value("x")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Increment("").status().code(), StatusCode::kInvalidArgument);
}

TEST(KvDatabaseTest, VersionsIncreaseOnWrite) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v1")).ok());
  auto v1 = db.GetVersioned("k");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->version, 1u);

  ASSERT_TRUE(db.Put("k", Value("v2")).ok());
  auto v2 = db.GetVersioned("k");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(AsString(v2->value), "v2");
}

TEST(KvDatabaseTest, CasCreatesWithVersionZero) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.CompareAndSwap("k", 0, Value("created")).ok());
  auto got = db.GetVersioned("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, 1u);
  EXPECT_EQ(AsString(got->value), "created");
}

TEST(KvDatabaseTest, CasSucceedsOnMatchingVersion) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v1")).ok());
  ASSERT_TRUE(db.CompareAndSwap("k", 1, Value("v2")).ok());
  EXPECT_EQ(AsString(*db.Get("k")), "v2");
}

TEST(KvDatabaseTest, CasConflictsOnStaleVersion) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v1")).ok());
  ASSERT_TRUE(db.Put("k", Value("v2")).ok());
  // A writer holding version 1 must lose.
  EXPECT_EQ(db.CompareAndSwap("k", 1, Value("stale")).code(), StatusCode::kAborted);
  EXPECT_EQ(AsString(*db.Get("k")), "v2");
}

TEST(KvDatabaseTest, CasOnMissingKeyWithNonZeroVersionConflicts) {
  InMemoryKvDatabase db;
  EXPECT_EQ(db.CompareAndSwap("ghost", 3, Value("x")).code(), StatusCode::kAborted);
}

TEST(KvDatabaseTest, DeleteRemovesAndReportsMissing) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v")).ok());
  ASSERT_TRUE(db.Delete("k").ok());
  EXPECT_EQ(db.Get("k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Delete("k").code(), StatusCode::kNotFound);
}

TEST(KvDatabaseTest, DeleteThenPutResetsVersion) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("a")).ok());
  ASSERT_TRUE(db.Delete("k").ok());
  ASSERT_TRUE(db.Put("k", Value("b")).ok());
  EXPECT_EQ(db.GetVersioned("k")->version, 1u);
}

TEST(KvDatabaseTest, IncrementStartsAtOne) {
  InMemoryKvDatabase db;
  auto first = db.Increment("counter");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(*db.Increment("counter"), 2);
  EXPECT_EQ(*db.Increment("counter"), 3);
  EXPECT_EQ(*db.Increment("other"), 1);
}

TEST(KvDatabaseTest, IncrementRejectsNonCounterValue) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("short")).ok());  // 5 bytes, not an int64.
  EXPECT_FALSE(db.Increment("k").ok());
}

TEST(KvDatabaseTest, ListKeysWithPrefix) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("policy/f1/state", Value("a")).ok());
  ASSERT_TRUE(db.Put("policy/f2/state", Value("b")).ok());
  ASSERT_TRUE(db.Put("other", Value("c")).ok());
  EXPECT_EQ(db.ListKeys("policy/").size(), 2u);
  EXPECT_EQ(db.ListKeys("").size(), 3u);
  EXPECT_TRUE(db.ListKeys("zzz").empty());
}

TEST(KvDatabaseTest, AccountingCounts) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v")).ok());
  ASSERT_TRUE(db.Get("k").ok());
  ASSERT_TRUE(db.GetVersioned("k").ok());
  ASSERT_TRUE(db.CompareAndSwap("k", 1, Value("v2")).ok());
  EXPECT_EQ(db.CompareAndSwap("k", 1, Value("v3")).code(), StatusCode::kAborted);

  const KvAccounting acc = db.accounting();
  EXPECT_EQ(acc.writes, 1u);
  EXPECT_EQ(acc.reads, 2u);
  EXPECT_EQ(acc.cas_attempts, 2u);
  EXPECT_EQ(acc.cas_conflicts, 1u);
}

TEST(KvDatabaseTest, ValuesAreIndependentCopies) {
  InMemoryKvDatabase db;
  std::vector<uint8_t> original = Value("abc");
  ASSERT_TRUE(db.Put("k", original).ok());
  auto got = db.Get("k");
  ASSERT_TRUE(got.ok());
  (*got)[0] = 'X';  // Mutating the returned copy must not affect the store.
  EXPECT_EQ(AsString(*db.Get("k")), "abc");
}

// --- Striped-lock concurrency stress --------------------------------------
//
// InMemoryKvDatabase stripes its map; CAS and Increment must stay atomic per
// key (the stripe lock covers read-modify-write), and the op counters must
// not lose updates. Run under TSan in CI.

TEST(KvDatabaseStressTest, ConcurrentIncrementsAreExact) {
  InMemoryKvDatabase db;
  constexpr int kThreads = 8;
  constexpr int kIncrementsEach = 500;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db]() {
      for (int i = 0; i < kIncrementsEach; ++i) {
        auto value = db.Increment("counter");
        ASSERT_TRUE(value.ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  auto final_value = db.Increment("counter");
  ASSERT_TRUE(final_value.ok());
  EXPECT_EQ(*final_value, kThreads * kIncrementsEach + 1);
}

TEST(KvDatabaseStressTest, ContendedCasAdmitsExactlyOneWinnerPerRound) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("slot", Value("v0")).ok());
  constexpr int kThreads = 6;
  constexpr int kRounds = 100;
  std::atomic<int> wins{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, &wins]() {
      for (int round = 0; round < kRounds; ++round) {
        auto versioned = db.GetVersioned("slot");
        ASSERT_TRUE(versioned.ok());
        const Status cas =
            db.CompareAndSwap("slot", versioned->version, Value("vN"));
        if (cas.ok()) {
          wins.fetch_add(1);
        } else {
          ASSERT_EQ(cas.code(), StatusCode::kAborted);
        }
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  // Version increments exactly once per successful CAS: the final version is
  // the win count plus the initial Put's version.
  auto versioned = db.GetVersioned("slot");
  ASSERT_TRUE(versioned.ok());
  EXPECT_EQ(versioned->version, static_cast<uint64_t>(wins.load()) + 1u);
  const KvAccounting acc = db.accounting();
  EXPECT_EQ(acc.cas_attempts, static_cast<uint64_t>(kThreads * kRounds));
  EXPECT_EQ(acc.cas_conflicts,
            acc.cas_attempts - static_cast<uint64_t>(wins.load()));
}

TEST(KvDatabaseStressTest, DisjointWritersKeepCountersAndKeysExact) {
  InMemoryKvDatabase db;
  constexpr int kThreads = 8;
  constexpr int kKeysEach = 150;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&db, t]() {
      for (int i = 0; i < kKeysEach; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "/" + std::to_string(i);
        ASSERT_TRUE(db.Put(key, Value("payload")).ok());
        ASSERT_TRUE(db.Get(key).ok());
      }
    });
  }
  for (auto& thread : threads) {
    thread.join();
  }
  const auto keys = db.ListKeys("");
  EXPECT_EQ(keys.size(), static_cast<size_t>(kThreads * kKeysEach));
  EXPECT_TRUE(std::is_sorted(keys.begin(), keys.end()));
  const KvAccounting acc = db.accounting();
  EXPECT_EQ(acc.writes, static_cast<uint64_t>(kThreads * kKeysEach));
  EXPECT_EQ(acc.reads, static_cast<uint64_t>(kThreads * kKeysEach));
}

}  // namespace
}  // namespace pronghorn
