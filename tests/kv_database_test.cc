#include "src/store/kv_database.h"

#include <gtest/gtest.h>

#include <string_view>

namespace pronghorn {
namespace {

std::vector<uint8_t> Value(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

std::string AsString(const std::vector<uint8_t>& bytes) {
  return std::string(bytes.begin(), bytes.end());
}

TEST(KvDatabaseTest, PutGetRoundTrip) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("key", Value("hello")).ok());
  auto got = db.Get("key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(AsString(*got), "hello");
}

TEST(KvDatabaseTest, GetMissingIsNotFound) {
  InMemoryKvDatabase db;
  EXPECT_EQ(db.Get("missing").status().code(), StatusCode::kNotFound);
}

TEST(KvDatabaseTest, EmptyKeyRejected) {
  InMemoryKvDatabase db;
  EXPECT_EQ(db.Put("", Value("x")).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Increment("").status().code(), StatusCode::kInvalidArgument);
}

TEST(KvDatabaseTest, VersionsIncreaseOnWrite) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v1")).ok());
  auto v1 = db.GetVersioned("k");
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(v1->version, 1u);

  ASSERT_TRUE(db.Put("k", Value("v2")).ok());
  auto v2 = db.GetVersioned("k");
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v2->version, 2u);
  EXPECT_EQ(AsString(v2->value), "v2");
}

TEST(KvDatabaseTest, CasCreatesWithVersionZero) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.CompareAndSwap("k", 0, Value("created")).ok());
  auto got = db.GetVersioned("k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->version, 1u);
  EXPECT_EQ(AsString(got->value), "created");
}

TEST(KvDatabaseTest, CasSucceedsOnMatchingVersion) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v1")).ok());
  ASSERT_TRUE(db.CompareAndSwap("k", 1, Value("v2")).ok());
  EXPECT_EQ(AsString(*db.Get("k")), "v2");
}

TEST(KvDatabaseTest, CasConflictsOnStaleVersion) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v1")).ok());
  ASSERT_TRUE(db.Put("k", Value("v2")).ok());
  // A writer holding version 1 must lose.
  EXPECT_EQ(db.CompareAndSwap("k", 1, Value("stale")).code(), StatusCode::kAborted);
  EXPECT_EQ(AsString(*db.Get("k")), "v2");
}

TEST(KvDatabaseTest, CasOnMissingKeyWithNonZeroVersionConflicts) {
  InMemoryKvDatabase db;
  EXPECT_EQ(db.CompareAndSwap("ghost", 3, Value("x")).code(), StatusCode::kAborted);
}

TEST(KvDatabaseTest, DeleteRemovesAndReportsMissing) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v")).ok());
  ASSERT_TRUE(db.Delete("k").ok());
  EXPECT_EQ(db.Get("k").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(db.Delete("k").code(), StatusCode::kNotFound);
}

TEST(KvDatabaseTest, DeleteThenPutResetsVersion) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("a")).ok());
  ASSERT_TRUE(db.Delete("k").ok());
  ASSERT_TRUE(db.Put("k", Value("b")).ok());
  EXPECT_EQ(db.GetVersioned("k")->version, 1u);
}

TEST(KvDatabaseTest, IncrementStartsAtOne) {
  InMemoryKvDatabase db;
  auto first = db.Increment("counter");
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 1);
  EXPECT_EQ(*db.Increment("counter"), 2);
  EXPECT_EQ(*db.Increment("counter"), 3);
  EXPECT_EQ(*db.Increment("other"), 1);
}

TEST(KvDatabaseTest, IncrementRejectsNonCounterValue) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("short")).ok());  // 5 bytes, not an int64.
  EXPECT_FALSE(db.Increment("k").ok());
}

TEST(KvDatabaseTest, ListKeysWithPrefix) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("policy/f1/state", Value("a")).ok());
  ASSERT_TRUE(db.Put("policy/f2/state", Value("b")).ok());
  ASSERT_TRUE(db.Put("other", Value("c")).ok());
  EXPECT_EQ(db.ListKeys("policy/").size(), 2u);
  EXPECT_EQ(db.ListKeys("").size(), 3u);
  EXPECT_TRUE(db.ListKeys("zzz").empty());
}

TEST(KvDatabaseTest, AccountingCounts) {
  InMemoryKvDatabase db;
  ASSERT_TRUE(db.Put("k", Value("v")).ok());
  ASSERT_TRUE(db.Get("k").ok());
  ASSERT_TRUE(db.GetVersioned("k").ok());
  ASSERT_TRUE(db.CompareAndSwap("k", 1, Value("v2")).ok());
  EXPECT_EQ(db.CompareAndSwap("k", 1, Value("v3")).code(), StatusCode::kAborted);

  const KvAccounting acc = db.accounting();
  EXPECT_EQ(acc.writes, 1u);
  EXPECT_EQ(acc.reads, 2u);
  EXPECT_EQ(acc.cas_attempts, 2u);
  EXPECT_EQ(acc.cas_conflicts, 1u);
}

TEST(KvDatabaseTest, ValuesAreIndependentCopies) {
  InMemoryKvDatabase db;
  std::vector<uint8_t> original = Value("abc");
  ASSERT_TRUE(db.Put("k", original).ok());
  auto got = db.Get("k");
  ASSERT_TRUE(got.ok());
  (*got)[0] = 'X';  // Mutating the returned copy must not affect the store.
  EXPECT_EQ(AsString(*db.Get("k")), "abc");
}

}  // namespace
}  // namespace pronghorn
