#include "src/platform/eviction.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/core/request_centric_policy.h"

namespace pronghorn {
namespace {

const TimePoint kT0 = TimePoint::FromMicros(0);

TEST(EveryKRequestsEvictionTest, RejectsZero) {
  EXPECT_EQ(EveryKRequestsEviction::Create(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EveryKRequestsEvictionTest, EvictsExactlyAtK) {
  auto model = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE((*model)->ShouldEvict(3, kT0, kT0, kT0));
  EXPECT_TRUE((*model)->ShouldEvict(4, kT0, kT0, kT0));
  EXPECT_TRUE((*model)->ShouldEvict(5, kT0, kT0, kT0));
  EXPECT_EQ((*model)->k(), 4u);
}

TEST(EveryKRequestsEvictionTest, OneRequestPerWorker) {
  auto model = EveryKRequestsEviction::Create(1);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->ShouldEvict(1, kT0, kT0, kT0));
  EXPECT_FALSE((*model)->ShouldEvict(0, kT0, kT0, kT0));
}

TEST(IdleTimeoutEvictionTest, EvictsWhenGapExceedsTimeout) {
  IdleTimeoutEviction model(Duration::Seconds(600));  // 10-minute Lambda-style.
  EXPECT_FALSE(model.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(599)));
  EXPECT_FALSE(model.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(600)));
  EXPECT_TRUE(model.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(601)));
  EXPECT_EQ(model.timeout(), Duration::Seconds(600));
}

TEST(IdleTimeoutEvictionTest, PastArrivalNeverEvicts) {
  IdleTimeoutEviction model(Duration::Seconds(1));
  const TimePoint now = TimePoint::FromMicros(5000000);
  EXPECT_FALSE(model.ShouldEvict(1, kT0, now, TimePoint::FromMicros(0)));
}

TEST(IdleTimeoutEvictionTest, IgnoresRequestCountAndAge) {
  IdleTimeoutEviction model(Duration::Seconds(10));
  const TimePoint later = kT0 + Duration::Seconds(20);
  EXPECT_TRUE(model.ShouldEvict(0, kT0, kT0, later));
  EXPECT_TRUE(model.ShouldEvict(1000000, kT0, kT0, later));
}

TEST(MaxLifetimeEvictionTest, EvictsOldWorkers) {
  MaxLifetimeEviction model(Duration::Seconds(1200));  // ~20-minute workers.
  EXPECT_FALSE(model.ShouldEvict(5, kT0, kT0 + Duration::Seconds(1200), kT0));
  EXPECT_TRUE(model.ShouldEvict(5, kT0, kT0 + Duration::Seconds(1201), kT0));
  EXPECT_EQ(model.max_lifetime(), Duration::Seconds(1200));
}

TEST(MaxLifetimeEvictionTest, AgeIsRelativeToStart) {
  MaxLifetimeEviction model(Duration::Seconds(100));
  const TimePoint started = TimePoint::FromMicros(500 * 1000000LL);
  EXPECT_FALSE(model.ShouldEvict(1, started, started + Duration::Seconds(50), kT0));
  EXPECT_TRUE(model.ShouldEvict(1, started, started + Duration::Seconds(150), kT0));
}

TEST(GeometricEvictionTest, RejectsMeanBelowOne) {
  EXPECT_EQ(GeometricEviction::Create(0.5, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GeometricEvictionTest, NeverEvictsBeforeFirstRequest) {
  auto model = GeometricEviction::Create(2.0, 1);
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE((*model)->ShouldEvict(0, kT0, kT0, kT0));
  }
}

TEST(GeometricEvictionTest, MeanLifetimeMatches) {
  auto model = GeometricEviction::Create(8.0, 2);
  ASSERT_TRUE(model.ok());
  uint64_t total_requests = 0;
  const int lifetimes = 3000;
  for (int l = 0; l < lifetimes; ++l) {
    uint64_t served = 0;
    do {
      ++served;
    } while (!(*model)->ShouldEvict(served, kT0, kT0, kT0));
    total_requests += served;
  }
  const double mean = static_cast<double>(total_requests) / lifetimes;
  EXPECT_NEAR(mean, 8.0, 0.5);
  EXPECT_EQ((*model)->mean_requests(), 8.0);
}

TEST(GeometricEvictionTest, MeanOneEvictsEveryRequest) {
  auto model = GeometricEviction::Create(1.0, 3);
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE((*model)->ShouldEvict(1, kT0, kT0, kT0));
  }
}

TEST(AnyOfEvictionTest, TriggersWhenAnyChildDoes) {
  IdleTimeoutEviction idle(Duration::Seconds(600));
  MaxLifetimeEviction lifetime(Duration::Seconds(1200));
  AnyOfEviction any({&idle, &lifetime});

  // Neither fires.
  EXPECT_FALSE(any.ShouldEvict(1, kT0, kT0 + Duration::Seconds(60),
                               kT0 + Duration::Seconds(120)));
  // Idle gap fires.
  EXPECT_TRUE(any.ShouldEvict(1, kT0, kT0 + Duration::Seconds(60),
                              kT0 + Duration::Seconds(60 + 601)));
  // Old age fires.
  EXPECT_TRUE(any.ShouldEvict(1, kT0, kT0 + Duration::Seconds(1300),
                              kT0 + Duration::Seconds(1310)));
}

TEST(AnyOfEvictionTest, EmptyNeverEvicts) {
  AnyOfEviction any({});
  EXPECT_FALSE(any.ShouldEvict(1000, kT0, kT0 + Duration::Seconds(9999),
                               kT0 + Duration::Seconds(99999)));
}

TEST(AnyOfEvictionTest, ToleratesNullChildren) {
  IdleTimeoutEviction idle(Duration::Seconds(1));
  AnyOfEviction any({nullptr, &idle});
  EXPECT_TRUE(any.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(2)));
}

// --- Snapshot-pool retention invariants (Algorithm 1, OnCapacityReached) ---
//
// The pool-side eviction rule must (a) never keep more than the configured
// capacity, (b) always keep the top-p% entries by weight, and (c) draw its
// random gamma% survivors deterministically from the forked Rng stream it is
// handed, so fleet sharding cannot perturb retention.

PoolEntry RetentionEntry(uint64_t id, uint64_t request_number) {
  PoolEntry entry;
  entry.metadata.id = SnapshotId{id};
  entry.metadata.function = "f";
  entry.metadata.request_number = request_number;
  entry.object_key = "snapshots/f/" + std::to_string(id);
  return entry;
}

std::set<uint64_t> PoolIds(const SnapshotPool& pool) {
  std::set<uint64_t> ids;
  for (const PoolEntry& entry : pool.entries()) {
    ids.insert(entry.metadata.id.value);
  }
  return ids;
}

TEST(PoolRetentionTest, CapacityRuleNeverKeepsMoreThanCapacity) {
  PolicyConfig config;
  config.beta = 8;
  config.pool_capacity = 5;
  config.max_checkpoint_request = 40;
  config.retain_top_percent = 40.0;
  config.retain_random_percent = 20.0;
  auto policy = RequestCentricPolicy::Create(config);
  ASSERT_TRUE(policy.ok());

  Rng rng(0xcafe);
  for (int trial = 0; trial < 100; ++trial) {
    PolicyState state(config);
    // Random partially-learned theta so the weights are non-trivial.
    for (uint64_t r = 0; r < config.max_checkpoint_request; ++r) {
      if (rng.Bernoulli(0.7)) {
        policy->OnRequestComplete(state, r,
                                  Duration::Micros(rng.UniformInt(1000, 900000)));
      }
    }
    for (uint64_t id = 1; id <= config.pool_capacity + 1; ++id) {
      ASSERT_TRUE(state.pool
                      .Add(RetentionEntry(id,
                                          rng.UniformUint64(config.max_checkpoint_request)))
                      .ok());
    }
    const size_t before = state.pool.size();
    Rng prune_rng = Rng(0x5eed).Fork(static_cast<uint64_t>(trial));
    const std::vector<PoolEntry> removed = policy->OnSnapshotAdded(state, prune_rng);
    EXPECT_LE(state.pool.size(), config.pool_capacity) << "trial " << trial;
    EXPECT_GE(state.pool.size(), 1u);
    // Removed and survivors partition the original pool.
    EXPECT_EQ(state.pool.size() + removed.size(), before);
    std::set<uint64_t> all = PoolIds(state.pool);
    for (const PoolEntry& entry : removed) {
      EXPECT_TRUE(all.insert(entry.metadata.id.value).second);
    }
    EXPECT_EQ(all.size(), before);
  }
}

TEST(PoolRetentionTest, SurvivorsAlwaysContainTheTopWeightedEntries) {
  Rng rng(0xbeef);
  for (int trial = 0; trial < 100; ++trial) {
    const size_t n = 2 + static_cast<size_t>(rng.UniformUint64(14));
    SnapshotPool pool;
    std::vector<uint64_t> ids;
    std::vector<double> weights;
    for (size_t i = 0; i < n; ++i) {
      const uint64_t id = i + 1;
      ASSERT_TRUE(pool.Add(RetentionEntry(id, rng.UniformUint64(41))).ok());
      ids.push_back(id);
      // A plateau at 0.5 makes weight ties common, exercising the id
      // tie-break in the retention ordering.
      weights.push_back(rng.Bernoulli(0.25) ? 0.5 : rng.UniformDouble());
    }
    const double top_percent = rng.UniformDouble(5.0, 80.0);
    const double random_percent = rng.UniformDouble(0.0, 30.0);

    // Expected top set, replicating the rule: weight descending, ties broken
    // toward the newer (higher) snapshot id.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t a, size_t b) {
      if (weights[a] != weights[b]) {
        return weights[a] > weights[b];
      }
      return ids[a] > ids[b];
    });
    const size_t keep_top = std::min(
        n, std::max<size_t>(
               1, static_cast<size_t>(
                      std::ceil(static_cast<double>(n) * top_percent / 100.0))));

    Rng prune_rng = Rng(0x70b).Fork(static_cast<uint64_t>(trial));
    pool.Prune(weights, top_percent, random_percent, prune_rng);
    const std::set<uint64_t> survivors = PoolIds(pool);
    EXPECT_GE(survivors.size(), keep_top);
    for (size_t i = 0; i < keep_top; ++i) {
      EXPECT_TRUE(survivors.count(ids[order[i]]))
          << "trial " << trial << ": top-ranked snapshot " << ids[order[i]]
          << " was evicted";
    }
  }
}

TEST(PoolRetentionTest, RandomSurvivorsDeterministicPerForkedStream) {
  constexpr size_t kPoolSize = 12;
  constexpr double kTopPercent = 20.0;     // ceil(12 * 0.2) = 3 kept by rank.
  constexpr double kRandomPercent = 40.0;  // floor(12 * 0.4) = 4 drawn from 9.
  const auto build = [] {
    SnapshotPool pool;
    Rng fill(0xf00d);
    for (uint64_t id = 1; id <= kPoolSize; ++id) {
      EXPECT_TRUE(pool.Add(RetentionEntry(id, fill.UniformUint64(41))).ok());
    }
    return pool;
  };
  const auto weights_for = [] {
    Rng weight_rng(0xd00d);
    std::vector<double> weights;
    for (size_t i = 0; i < kPoolSize; ++i) {
      weights.push_back(weight_rng.UniformDouble());
    }
    return weights;
  };

  std::set<std::set<uint64_t>> distinct;
  for (uint64_t stream = 0; stream < 20; ++stream) {
    SnapshotPool a = build();
    SnapshotPool b = build();
    const std::vector<double> weights = weights_for();
    Rng rng_a = Rng(0x5eed).Fork(stream);
    Rng rng_b = Rng(0x5eed).Fork(stream);
    a.Prune(weights, kTopPercent, kRandomPercent, rng_a);
    b.Prune(weights, kTopPercent, kRandomPercent, rng_b);
    // Same forked stream -> exactly the same survivors, order included.
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a.entries()[i].metadata.id, b.entries()[i].metadata.id)
          << "stream " << stream;
    }
    distinct.insert(PoolIds(a));
  }
  // And the stream actually matters: distinct forks pick distinct random
  // survivor sets (4 of 9 -> 126 combinations; 20 identical draws would mean
  // the rng argument is being ignored).
  EXPECT_GT(distinct.size(), 1u);
}

}  // namespace
}  // namespace pronghorn
