#include "src/platform/eviction.h"

#include <gtest/gtest.h>

namespace pronghorn {
namespace {

const TimePoint kT0 = TimePoint::FromMicros(0);

TEST(EveryKRequestsEvictionTest, RejectsZero) {
  EXPECT_EQ(EveryKRequestsEviction::Create(0).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(EveryKRequestsEvictionTest, EvictsExactlyAtK) {
  auto model = EveryKRequestsEviction::Create(4);
  ASSERT_TRUE(model.ok());
  EXPECT_FALSE((*model)->ShouldEvict(3, kT0, kT0, kT0));
  EXPECT_TRUE((*model)->ShouldEvict(4, kT0, kT0, kT0));
  EXPECT_TRUE((*model)->ShouldEvict(5, kT0, kT0, kT0));
  EXPECT_EQ((*model)->k(), 4u);
}

TEST(EveryKRequestsEvictionTest, OneRequestPerWorker) {
  auto model = EveryKRequestsEviction::Create(1);
  ASSERT_TRUE(model.ok());
  EXPECT_TRUE((*model)->ShouldEvict(1, kT0, kT0, kT0));
  EXPECT_FALSE((*model)->ShouldEvict(0, kT0, kT0, kT0));
}

TEST(IdleTimeoutEvictionTest, EvictsWhenGapExceedsTimeout) {
  IdleTimeoutEviction model(Duration::Seconds(600));  // 10-minute Lambda-style.
  EXPECT_FALSE(model.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(599)));
  EXPECT_FALSE(model.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(600)));
  EXPECT_TRUE(model.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(601)));
  EXPECT_EQ(model.timeout(), Duration::Seconds(600));
}

TEST(IdleTimeoutEvictionTest, PastArrivalNeverEvicts) {
  IdleTimeoutEviction model(Duration::Seconds(1));
  const TimePoint now = TimePoint::FromMicros(5000000);
  EXPECT_FALSE(model.ShouldEvict(1, kT0, now, TimePoint::FromMicros(0)));
}

TEST(IdleTimeoutEvictionTest, IgnoresRequestCountAndAge) {
  IdleTimeoutEviction model(Duration::Seconds(10));
  const TimePoint later = kT0 + Duration::Seconds(20);
  EXPECT_TRUE(model.ShouldEvict(0, kT0, kT0, later));
  EXPECT_TRUE(model.ShouldEvict(1000000, kT0, kT0, later));
}

TEST(MaxLifetimeEvictionTest, EvictsOldWorkers) {
  MaxLifetimeEviction model(Duration::Seconds(1200));  // ~20-minute workers.
  EXPECT_FALSE(model.ShouldEvict(5, kT0, kT0 + Duration::Seconds(1200), kT0));
  EXPECT_TRUE(model.ShouldEvict(5, kT0, kT0 + Duration::Seconds(1201), kT0));
  EXPECT_EQ(model.max_lifetime(), Duration::Seconds(1200));
}

TEST(MaxLifetimeEvictionTest, AgeIsRelativeToStart) {
  MaxLifetimeEviction model(Duration::Seconds(100));
  const TimePoint started = TimePoint::FromMicros(500 * 1000000LL);
  EXPECT_FALSE(model.ShouldEvict(1, started, started + Duration::Seconds(50), kT0));
  EXPECT_TRUE(model.ShouldEvict(1, started, started + Duration::Seconds(150), kT0));
}

TEST(GeometricEvictionTest, RejectsMeanBelowOne) {
  EXPECT_EQ(GeometricEviction::Create(0.5, 1).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(GeometricEvictionTest, NeverEvictsBeforeFirstRequest) {
  auto model = GeometricEviction::Create(2.0, 1);
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE((*model)->ShouldEvict(0, kT0, kT0, kT0));
  }
}

TEST(GeometricEvictionTest, MeanLifetimeMatches) {
  auto model = GeometricEviction::Create(8.0, 2);
  ASSERT_TRUE(model.ok());
  uint64_t total_requests = 0;
  const int lifetimes = 3000;
  for (int l = 0; l < lifetimes; ++l) {
    uint64_t served = 0;
    do {
      ++served;
    } while (!(*model)->ShouldEvict(served, kT0, kT0, kT0));
    total_requests += served;
  }
  const double mean = static_cast<double>(total_requests) / lifetimes;
  EXPECT_NEAR(mean, 8.0, 0.5);
  EXPECT_EQ((*model)->mean_requests(), 8.0);
}

TEST(GeometricEvictionTest, MeanOneEvictsEveryRequest) {
  auto model = GeometricEviction::Create(1.0, 3);
  ASSERT_TRUE(model.ok());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE((*model)->ShouldEvict(1, kT0, kT0, kT0));
  }
}

TEST(AnyOfEvictionTest, TriggersWhenAnyChildDoes) {
  IdleTimeoutEviction idle(Duration::Seconds(600));
  MaxLifetimeEviction lifetime(Duration::Seconds(1200));
  AnyOfEviction any({&idle, &lifetime});

  // Neither fires.
  EXPECT_FALSE(any.ShouldEvict(1, kT0, kT0 + Duration::Seconds(60),
                               kT0 + Duration::Seconds(120)));
  // Idle gap fires.
  EXPECT_TRUE(any.ShouldEvict(1, kT0, kT0 + Duration::Seconds(60),
                              kT0 + Duration::Seconds(60 + 601)));
  // Old age fires.
  EXPECT_TRUE(any.ShouldEvict(1, kT0, kT0 + Duration::Seconds(1300),
                              kT0 + Duration::Seconds(1310)));
}

TEST(AnyOfEvictionTest, EmptyNeverEvicts) {
  AnyOfEviction any({});
  EXPECT_FALSE(any.ShouldEvict(1000, kT0, kT0 + Duration::Seconds(9999),
                               kT0 + Duration::Seconds(99999)));
}

TEST(AnyOfEvictionTest, ToleratesNullChildren) {
  IdleTimeoutEviction idle(Duration::Seconds(1));
  AnyOfEviction any({nullptr, &idle});
  EXPECT_TRUE(any.ShouldEvict(1, kT0, kT0, kT0 + Duration::Seconds(2)));
}

}  // namespace
}  // namespace pronghorn
