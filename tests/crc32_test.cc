#include "src/common/crc32.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace pronghorn {
namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

TEST(Crc32Test, KnownVectors) {
  // Reference values for the IEEE 802.3 polynomial.
  EXPECT_EQ(Crc32(Bytes("")), 0x00000000u);
  EXPECT_EQ(Crc32(Bytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(Crc32(Bytes("The quick brown fox jumps over the lazy dog")),
            0x414fa339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::vector<uint8_t> data = Bytes("hello, checkpoint world");
  uint32_t state = kCrc32Init;
  state = Crc32Update(state, std::span<const uint8_t>(data.data(), 5));
  state = Crc32Update(state,
                      std::span<const uint8_t>(data.data() + 5, data.size() - 5));
  EXPECT_EQ(Crc32Finalize(state), Crc32(data));
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::vector<uint8_t> data = Bytes("snapshot payload");
  const uint32_t original = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data), original) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(Crc32Test, EmptyChunksAreNoOps) {
  uint32_t state = kCrc32Init;
  state = Crc32Update(state, {});
  EXPECT_EQ(Crc32Finalize(state), Crc32({}));
}

TEST(Crc32Test, DifferentLengthsDiffer) {
  EXPECT_NE(Crc32(Bytes("aa")), Crc32(Bytes("aaa")));
}

TEST(Crc32Test, CombineMatchesConcatenation) {
  const std::vector<uint8_t> a = Bytes("streaming fleet ");
  const std::vector<uint8_t> b = Bytes("accumulator rows");
  std::vector<uint8_t> ab = a;
  ab.insert(ab.end(), b.begin(), b.end());
  EXPECT_EQ(Crc32Combine(Crc32(a), Crc32(b), b.size()), Crc32(ab));
}

TEST(Crc32Test, CombineIsAssociativeOverManyChunks) {
  // Stitching per-chunk CRCs left-to-right must equal the one-shot CRC of
  // the concatenation — the identity the streaming report digest relies on.
  const std::vector<std::vector<uint8_t>> chunks = {
      Bytes("alpha"), Bytes(""), Bytes("b"), Bytes("gamma-gamma-gamma"),
      std::vector<uint8_t>{0x00, 0xff, 0x7f, 0x20, 0x00}};
  std::vector<uint8_t> whole;
  uint32_t stitched = 0;  // CRC32 of the empty string.
  for (const auto& chunk : chunks) {
    whole.insert(whole.end(), chunk.begin(), chunk.end());
    stitched = Crc32Combine(stitched, Crc32(chunk), chunk.size());
  }
  EXPECT_EQ(stitched, Crc32(whole));
}

TEST(Crc32Test, CombineWithEmptySuffixIsIdentity) {
  const uint32_t crc = Crc32(Bytes("payload"));
  EXPECT_EQ(Crc32Combine(crc, Crc32(Bytes("")), 0), crc);
}

TEST(Crc32Test, CombineHandlesLongLengths) {
  // The GF(2) matrix walk must be correct across many length bits, not just
  // short strings: build a 1 MiB pattern and split it unevenly.
  std::vector<uint8_t> big(1 << 20);
  for (size_t i = 0; i < big.size(); ++i) {
    big[i] = static_cast<uint8_t>((i * 131) ^ (i >> 7));
  }
  const size_t split = 12345;
  const std::span<const uint8_t> head(big.data(), split);
  const std::span<const uint8_t> tail(big.data() + split, big.size() - split);
  EXPECT_EQ(Crc32Combine(Crc32(head), Crc32(tail), tail.size()), Crc32(big));
}

}  // namespace
}  // namespace pronghorn
