#include "src/common/crc32.h"

#include <gtest/gtest.h>

#include <string_view>
#include <vector>

namespace pronghorn {
namespace {

std::vector<uint8_t> Bytes(std::string_view text) {
  return std::vector<uint8_t>(text.begin(), text.end());
}

TEST(Crc32Test, KnownVectors) {
  // Reference values for the IEEE 802.3 polynomial.
  EXPECT_EQ(Crc32(Bytes("")), 0x00000000u);
  EXPECT_EQ(Crc32(Bytes("123456789")), 0xcbf43926u);
  EXPECT_EQ(Crc32(Bytes("The quick brown fox jumps over the lazy dog")),
            0x414fa339u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::vector<uint8_t> data = Bytes("hello, checkpoint world");
  uint32_t state = kCrc32Init;
  state = Crc32Update(state, std::span<const uint8_t>(data.data(), 5));
  state = Crc32Update(state,
                      std::span<const uint8_t>(data.data() + 5, data.size() - 5));
  EXPECT_EQ(Crc32Finalize(state), Crc32(data));
}

TEST(Crc32Test, SingleBitFlipChangesChecksum) {
  std::vector<uint8_t> data = Bytes("snapshot payload");
  const uint32_t original = Crc32(data);
  for (size_t i = 0; i < data.size(); ++i) {
    data[i] ^= 0x01;
    EXPECT_NE(Crc32(data), original) << "flip at byte " << i;
    data[i] ^= 0x01;
  }
}

TEST(Crc32Test, EmptyChunksAreNoOps) {
  uint32_t state = kCrc32Init;
  state = Crc32Update(state, {});
  EXPECT_EQ(Crc32Finalize(state), Crc32({}));
}

TEST(Crc32Test, DifferentLengthsDiffer) {
  EXPECT_NE(Crc32(Bytes("aa")), Crc32(Bytes("aaa")));
}

}  // namespace
}  // namespace pronghorn
