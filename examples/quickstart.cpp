// Quickstart: compare Pronghorn's request-centric policy against the
// cold-start and checkpoint-after-1st baselines on one benchmark.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [benchmark] [eviction_k] [requests]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/analysis.h"
#include "src/platform/function_simulation.h"

using namespace pronghorn;

namespace {

SimulationReport RunPolicy(const WorkloadProfile& profile,
                           const OrchestrationPolicy& policy, uint64_t eviction_k,
                           uint64_t requests, uint64_t seed) {
  auto eviction = EveryKRequestsEviction::Create(eviction_k);
  if (!eviction.ok()) {
    std::fprintf(stderr, "bad eviction interval: %s\n",
                 eviction.status().ToString().c_str());
    std::exit(1);
  }
  SimOptions options;
  options.seed = seed;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), policy, **eviction,
                         options);
  auto report = sim.RunClosedLoop(requests);
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  return *std::move(report);
}

}  // namespace

int main(int argc, char** argv) {
  const std::string benchmark = argc > 1 ? argv[1] : "DynamicHTML";
  const uint64_t eviction_k =
      argc > 2 ? static_cast<uint64_t>(std::strtoull(argv[2], nullptr, 10)) : 1;
  const uint64_t requests =
      argc > 3 ? static_cast<uint64_t>(std::strtoull(argv[3], nullptr, 10)) : 500;

  const auto profile = WorkloadRegistry::Default().Find(benchmark);
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    std::fprintf(stderr, "known benchmarks:\n");
    for (const auto& p : WorkloadRegistry::Default().profiles()) {
      std::fprintf(stderr, "  %s (%s)\n", p.name.c_str(),
                   std::string(RuntimeFamilyName(p.family)).c_str());
    }
    return 1;
  }

  PolicyConfig config;
  config.beta = static_cast<uint32_t>(eviction_k);
  config.max_checkpoint_request =
      (*profile)->family == RuntimeFamily::kJvm ? 200 : 100;

  const ColdStartPolicy cold(config);
  const CheckpointAfterFirstPolicy after_first(config);
  const auto request_centric = RequestCentricPolicy::Create(config);
  if (!request_centric.ok()) {
    std::fprintf(stderr, "%s\n", request_centric.status().ToString().c_str());
    return 1;
  }

  std::printf("benchmark=%s runtime=%s eviction=every %llu request(s), %llu requests\n\n",
              benchmark.c_str(),
              std::string(RuntimeFamilyName((*profile)->family)).c_str(),
              static_cast<unsigned long long>(eviction_k),
              static_cast<unsigned long long>(requests));
  std::printf("%-22s %12s %12s %12s %12s\n", "policy", "p50 (us)", "p90 (us)",
              "p99 (us)", "checkpoints");

  SimulationReport baseline_report;
  for (const OrchestrationPolicy* policy :
       {static_cast<const OrchestrationPolicy*>(&cold),
        static_cast<const OrchestrationPolicy*>(&after_first),
        static_cast<const OrchestrationPolicy*>(&*request_centric)}) {
    const SimulationReport report =
        RunPolicy(**profile, *policy, eviction_k, requests, /*seed=*/42);
    const DistributionSummary summary = report.LatencySummary();
    std::printf("%-22s %12.0f %12.0f %12.0f %12llu\n",
                std::string(policy->name()).c_str(), summary.Quantile(50),
                summary.Quantile(90), summary.Quantile(99),
                static_cast<unsigned long long>(report.checkpoints));
    if (policy == static_cast<const OrchestrationPolicy*>(&after_first)) {
      baseline_report = report;
    }
    if (policy == static_cast<const OrchestrationPolicy*>(&*request_centric)) {
      std::printf("\nrequest-centric median improvement over checkpoint-after-1st: "
                  "%.1f%%\n",
                  MedianImprovementPercent(baseline_report, report));
    }
  }
  return 0;
}
