// Scenario: a dynamic-HTML rendering service — the workload the paper's
// introduction motivates (Figure 1). A single function deployment serves
// traffic under aggressive worker eviction; we watch Pronghorn learn the
// request range, build its snapshot pool, and converge onto hot snapshots,
// reporting the phase-by-phase median latency and the learned weight vector.

#include <cstdio>
#include <string>

#include "src/core/request_centric_policy.h"
#include "src/platform/analysis.h"
#include "src/platform/function_simulation.h"

using namespace pronghorn;

namespace {

void PrintPhase(const char* label, const SimulationReport& report, size_t begin,
                size_t end) {
  DistributionSummary summary;
  double maturity_sum = 0;
  for (size_t i = begin; i < end && i < report.records.size(); ++i) {
    summary.Add(static_cast<double>(report.records[i].latency.ToMicros()));
    maturity_sum += static_cast<double>(report.records[i].request_number);
  }
  std::printf("  %-28s median %8.0f us   p90 %8.0f us   avg JIT maturity %6.1f\n",
              label, summary.Median(), summary.Quantile(90),
              maturity_sum / static_cast<double>(end - begin));
}

}  // namespace

int main() {
  const auto profile = WorkloadRegistry::Default().Find("DynamicHTML");
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }

  PolicyConfig config;
  config.beta = 1;  // One request per worker: the serverless worst case.
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  const auto policy = RequestCentricPolicy::Create(config);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 1;
  }

  auto eviction = EveryKRequestsEviction::Create(1);
  if (!eviction.ok()) {
    std::fprintf(stderr, "%s\n", eviction.status().ToString().c_str());
    return 1;
  }

  SimOptions options;
  options.seed = 7;
  FunctionSimulation sim(**profile, WorkloadRegistry::Default(), *policy, **eviction,
                         options);

  std::printf("Dynamic HTML rendering service: 600 requests, a fresh worker for\n"
              "every request (eviction rate 1), request-centric orchestration.\n\n");
  auto report = sim.RunClosedLoop(600);
  if (!report.ok()) {
    std::fprintf(stderr, "simulation failed: %s\n", report.status().ToString().c_str());
    return 1;
  }

  std::printf("phase-by-phase behavior:\n");
  PrintPhase("requests   1-100 (explore)", *report, 0, 100);
  PrintPhase("requests 101-200", *report, 100, 200);
  PrintPhase("requests 201-300", *report, 200, 300);
  PrintPhase("requests 301-600 (exploit)", *report, 300, 600);

  std::printf("\nplatform activity: %llu worker lifetimes, %llu cold starts, "
              "%llu restores, %llu checkpoints\n",
              static_cast<unsigned long long>(report->worker_lifetimes),
              static_cast<unsigned long long>(report->cold_starts),
              static_cast<unsigned long long>(report->restores),
              static_cast<unsigned long long>(report->checkpoints));

  // Peek at the learned state in the Database.
  auto state = sim.LoadPolicyState();
  if (!state.ok()) {
    std::fprintf(stderr, "%s\n", state.status().ToString().c_str());
    return 1;
  }
  std::printf("\nlearned weight vector theta (explored %u of %u request numbers):\n",
              state->theta.ExploredCount(), state->theta.length());
  for (uint64_t r : {1ull, 5ull, 10ull, 25ull, 50ull, 75ull, 100ull}) {
    std::printf("  theta[%3llu] = %8.2f ms\n", static_cast<unsigned long long>(r),
                state->theta.At(r) * 1000.0);
  }
  std::printf("\nsnapshot pool (%zu of %u slots):\n", state->pool.size(),
              config.pool_capacity);
  for (const PoolEntry& entry : state->pool.entries()) {
    std::printf("  snapshot %-4llu taken at request %-4llu (%5.1f MB) -> %s\n",
                static_cast<unsigned long long>(entry.metadata.id.value),
                static_cast<unsigned long long>(entry.metadata.request_number),
                static_cast<double>(entry.metadata.logical_size_bytes) / 1048576.0,
                entry.object_key.c_str());
  }

  const auto convergence = ConvergenceRequest(report->records, 20, 0.02);
  if (convergence.has_value()) {
    std::printf("\nconverged (window-20 median within 2%% of final) at request %llu\n",
                static_cast<unsigned long long>(*convergence));
  }
  return 0;
}
