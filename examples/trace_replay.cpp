// Scenario: production-trace replay on the whole-platform simulator.
// Generates an Azure-like multi-function invocation trace, persists it as
// CSV (the interchange format for real traces), loads it back, and replays
// it against a platform hosting all three functions at once — once per
// orchestration policy — with a shared Database/Object Store, a 10-minute
// idle timeout, and a 20-minute max worker lifetime. Snapshots of one run
// are archived to a file-backed object store for inspection.

#include <cstdio>
#include <filesystem>
#include <string>

#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/platform_simulation.h"
#include "src/store/object_store.h"
#include "src/trace/trace_generator.h"

using namespace pronghorn;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string trace_path =
      argc > 1 ? argv[1]
               : (std::filesystem::temp_directory_path() / "pronghorn_trace.csv")
                     .string();

  // 1. Generate a 15-minute multi-function trace at mixed popularity.
  const AzureTraceModel model;
  TraceGenerator generator(model, /*seed=*/99);
  auto trace = generator.GenerateTrace(
      {{"MST", 85.0}, {"Thumbnailer", 75.0}, {"HTMLRendering", 65.0}},
      Duration::Seconds(900));
  if (!trace.ok()) {
    return Fail(trace.status());
  }
  if (Status s = trace->WriteCsv(trace_path); !s.ok()) {
    return Fail(s);
  }
  std::printf("wrote %zu invocations to %s\n", trace->size(), trace_path.c_str());

  // 2. Load it back (the path a real trace file would take).
  auto loaded = InvocationTrace::ReadCsv(trace_path);
  if (!loaded.ok()) {
    return Fail(loaded.status());
  }

  // 3. Replay the whole platform once per policy.
  PolicyConfig config;
  config.beta = 4;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  const ColdStartPolicy cold(config);
  const CheckpointAfterFirstPolicy after_first(config);
  const auto request_centric = RequestCentricPolicy::Create(config);
  if (!request_centric.ok()) {
    return Fail(request_centric.status());
  }

  for (const OrchestrationPolicy* policy :
       {static_cast<const OrchestrationPolicy*>(&cold),
        static_cast<const OrchestrationPolicy*>(&after_first),
        static_cast<const OrchestrationPolicy*>(&*request_centric)}) {
    IdleTimeoutEviction idle(Duration::Seconds(600));
    MaxLifetimeEviction lifetime(Duration::Seconds(1200));
    AnyOfEviction eviction({&idle, &lifetime});
    SimOptions options;
    options.seed = 31;
    PlatformSimulation platform(WorkloadRegistry::Default(), eviction, options);
    for (const std::string& function : loaded->Functions()) {
      auto profile = WorkloadRegistry::Default().Find(function);
      if (!profile.ok()) {
        return Fail(profile.status());
      }
      if (Status s = platform.DeployFunction(**profile, *policy); !s.ok()) {
        return Fail(s);
      }
    }

    auto report = platform.Replay(*loaded);
    if (!report.ok()) {
      return Fail(report.status());
    }

    std::printf("\npolicy: %s\n", std::string(policy->name()).c_str());
    for (const auto& [function, function_report] : report->per_function) {
      const DistributionSummary summary = function_report.LatencySummary();
      std::printf("  %-14s %4zu reqs   median %9.0f us   p90 %9.0f us   "
                  "(%llu lifetimes, %llu checkpoints)\n",
                  function.c_str(), function_report.records.size(), summary.Median(),
                  summary.Quantile(90),
                  static_cast<unsigned long long>(function_report.worker_lifetimes),
                  static_cast<unsigned long long>(function_report.checkpoints));
    }
    std::printf("  platform: global median %9.0f us, %llu checkpoints, "
                "%.0f MB peak snapshot storage\n",
                report->GlobalLatencySummary().Median(),
                static_cast<unsigned long long>(report->TotalCheckpoints()),
                static_cast<double>(report->object_store.peak_logical_bytes) /
                    1048576.0);
  }

  // 4. Demonstrate the durable object store: archive a marker object.
  const std::string store_dir =
      (std::filesystem::temp_directory_path() / "pronghorn_snapshots").string();
  auto store = FileBackedObjectStore::Open(store_dir);
  if (!store.ok()) {
    return Fail(store.status());
  }
  ObjectBlob blob({0xca, 0xfe}, 2);
  if (Status s = (*store)->Put("examples/marker", std::move(blob)); !s.ok()) {
    return Fail(s);
  }
  std::printf("\nfile-backed object store at %s now holds %zu object(s)\n",
              store_dir.c_str(), (*store)->ListKeys("").size());
  return 0;
}
