// Scenario: input-aware meta-orchestration (the paper's §6 future-work
// direction). A function receives two distinct request classes whose code
// paths diverge, so speculative optimizations specialized for one class keep
// deoptimizing on the other. We compare:
//
//   unified      — one deployment, one snapshot pool for all traffic;
//   specialized  — a gateway classifies requests and routes each class to
//                  its own deployment (own orchestrator, Database scope, and
//                  snapshot pool), as §6 sketches ("different orchestrators
//                  can be specialized towards specific patterns").

#include <cstdio>
#include <string>

#include "src/checkpoint/criu_like_engine.h"
#include "src/common/stats.h"
#include "src/core/orchestrator.h"
#include "src/core/request_centric_policy.h"
#include "src/store/kv_database.h"
#include "src/store/object_store.h"
#include "src/store/snapshot_store.h"

using namespace pronghorn;

namespace {

constexpr uint64_t kRequests = 2400;
constexpr uint64_t kEvictionEvery = 4;

WorkloadProfile SensitiveProfile() {
  WorkloadProfile p;
  p.name = "PolyglotRender";  // Renders two very different template families.
  p.family = RuntimeFamily::kPyPy;
  p.compute_base = Duration::Millis(40);
  p.converged_speedup = 3.0;
  p.convergence_requests = 300;
  p.hot_method_count = 12;
  p.baseline_speedup_fraction = 0.6;
  p.deopt_rate = 0.02;
  p.class_sensitivity = 80.0;  // Cross-class requests trip speculation guards.
  p.checkpoint_mean = Duration::Millis(80);
  p.checkpoint_stddev = Duration::Millis(15);
  p.restore_mean = Duration::Millis(60);
  p.restore_stddev = Duration::Millis(5);
  p.snapshot_mb = 50;
  p.cold_init = Duration::Millis(180);
  p.lazy_init_cost = Duration::Millis(20);
  return p;
}

// One deployment: an orchestrator plus its worker, evicted every k requests.
class Deployment {
 public:
  Deployment(const WorkloadProfile& profile, const WorkloadRegistry& registry,
             const OrchestrationPolicy& policy, KvDatabase& db, ObjectStore& store,
             CheckpointEngine& engine, SimClock& clock, std::string scope,
             uint64_t seed)
      : state_store_(db, std::move(scope), policy.config()),
        snapshot_store_(store),
        orchestrator_(profile, registry, policy, engine, snapshot_store_,
                      state_store_, clock, seed) {}

  Result<Duration> Serve(const FunctionRequest& request) {
    if (!session_.has_value()) {
      PRONGHORN_ASSIGN_OR_RETURN(WorkerSession session, orchestrator_.StartWorker());
      session_.emplace(std::move(session));
      served_in_lifetime_ = 0;
    }
    PRONGHORN_ASSIGN_OR_RETURN(RequestOutcome outcome,
                               orchestrator_.ServeRequest(*session_, request));
    if (++served_in_lifetime_ >= kEvictionEvery) {
      session_.reset();
    }
    total_deopts_ = session_.has_value() ? session_->process.total_deopts()
                                         : total_deopts_;
    return outcome.latency;
  }

 private:
  PolicyStateStore state_store_;
  FlatSnapshotStore snapshot_store_;
  Orchestrator orchestrator_;
  std::optional<WorkerSession> session_;
  uint64_t served_in_lifetime_ = 0;
  uint64_t total_deopts_ = 0;
};

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

}  // namespace

int main() {
  const WorkloadProfile profile = SensitiveProfile();
  auto registry = WorkloadRegistry::Create({profile});
  if (!registry.ok()) {
    return Fail(registry.status());
  }
  const WorkloadProfile& p = **registry->Find("PolyglotRender");

  PolicyConfig config;
  config.beta = kEvictionEvery;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;
  auto policy = RequestCentricPolicy::Create(config);
  if (!policy.ok()) {
    return Fail(policy.status());
  }

  std::printf("Input-aware orchestration on a class-sensitive workload\n"
              "(two request classes, 50/50 traffic, %llu requests, eviction "
              "every %llu)\n\n",
              static_cast<unsigned long long>(kRequests),
              static_cast<unsigned long long>(kEvictionEvery));

  for (const bool specialized : {false, true}) {
    SimClock clock;
    InMemoryKvDatabase db;
    InMemoryObjectStore store;
    CriuLikeEngine engine(7);
    Rng traffic(99);

    Deployment unified(p, *registry, *policy, db, store, engine, clock,
                       "PolyglotRender", 11);
    Deployment class_a(p, *registry, *policy, db, store, engine, clock,
                       "PolyglotRender#classA", 12);
    Deployment class_b(p, *registry, *policy, db, store, engine, clock,
                       "PolyglotRender#classB", 13);

    DistributionSummary latencies;
    for (uint64_t i = 0; i < kRequests; ++i) {
      FunctionRequest request;
      request.id = i;
      request.input_class = traffic.Bernoulli(0.5) ? 1u : 0u;
      Deployment& target =
          !specialized ? unified : (request.input_class == 0 ? class_a : class_b);
      auto latency = target.Serve(request);
      if (!latency.ok()) {
        return Fail(latency.status());
      }
      latencies.Add(static_cast<double>(latency->ToMicros()));
    }

    std::printf("  %-12s median %8.0f us   p90 %8.0f us   p99 %8.0f us\n",
                specialized ? "specialized" : "unified", latencies.Median(),
                latencies.Quantile(90), latencies.Quantile(99));
  }

  std::printf("\nThe unified deployment keeps deoptimizing: snapshots optimized for\n"
              "one class serve the other class and trip their speculation guards.\n"
              "Routing each class to its own orchestrator (own pool, own learned\n"
              "weights) lets both converge -- the meta-optimization the paper's §6\n"
              "envisions.\n");
  return 0;
}
