// Scenario: extending the orchestrator with a custom policy. The paper's
// Orchestrator runs policies "through a minimal abstract interface, enabling
// easy implementation of a range of policies" (§4). This example implements
// a plausible middle-ground heuristic — checkpoint once at a fixed request
// number N, always restore the newest snapshot — plugs it into the platform
// unchanged, and shows why learned orchestration beats hand-picked N.

#include <algorithm>
#include <cstdio>
#include <string>

#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/function_simulation.h"

using namespace pronghorn;

namespace {

// Checkpoint-at-fixed-N: like checkpoint-after-1st, but the (single)
// snapshot is taken after the N-th request since cold start, with chained
// re-checkpoints until maturity N is reached. N must be guessed per
// workload — exactly the manual tuning Pronghorn's learning removes.
class FixedPointPolicy : public OrchestrationPolicy {
 public:
  FixedPointPolicy(const PolicyConfig& config, uint64_t target_request)
      : config_(config), target_(target_request) {}

  std::string_view name() const override { return "fixed-point"; }
  const PolicyConfig& config() const override { return config_; }

  StartDecision OnWorkerStart(const PolicyState& state, Rng& rng) const override {
    (void)rng;
    StartDecision decision;
    // Restore the most mature snapshot available (newest id wins ties).
    const PoolEntry* best = nullptr;
    for (const PoolEntry& entry : state.pool.entries()) {
      if (best == nullptr ||
          entry.metadata.request_number > best->metadata.request_number) {
        best = &entry;
      }
    }
    uint64_t start = 0;
    if (best != nullptr) {
      decision.restore_from = best->metadata.id;
      start = best->metadata.request_number;
    }
    if (start < target_) {
      // March toward the target one lifetime at a time.
      decision.checkpoint_at_request = std::min<uint64_t>(start + config_.beta, target_);
    }
    return decision;
  }

  void OnRequestComplete(PolicyState& state, uint64_t request_number,
                         Duration latency) const override {
    state.theta.Update(request_number, latency.ToSeconds(), config_.alpha);
  }

  std::vector<PoolEntry> OnSnapshotAdded(PolicyState& state, Rng& rng) const override {
    (void)rng;
    // Keep only the most mature snapshot: this policy never looks back.
    std::vector<PoolEntry> evicted;
    while (state.pool.size() > 1) {
      const PoolEntry* worst = nullptr;
      for (const PoolEntry& entry : state.pool.entries()) {
        if (worst == nullptr ||
            entry.metadata.request_number < worst->metadata.request_number) {
          worst = &entry;
        }
      }
      std::vector<double> weights(state.pool.size(), 1.0);
      for (size_t i = 0; i < state.pool.size(); ++i) {
        if (&state.pool.entries()[i] == worst) {
          weights[i] = 0.0;
        }
      }
      Rng deterministic(0);
      auto removed = state.pool.Prune(weights, /*top_percent=*/
                                      100.0 * (static_cast<double>(state.pool.size()) -
                                               1.0) /
                                          static_cast<double>(state.pool.size()),
                                      0.0, deterministic);
      for (PoolEntry& entry : removed) {
        evicted.push_back(std::move(entry));
      }
      if (removed.empty()) {
        break;  // Defensive: Prune never empties, avoid spinning.
      }
    }
    return evicted;
  }

 private:
  PolicyConfig config_;
  uint64_t target_;
};

double RunAndReportMedian(const WorkloadProfile& profile,
                          const OrchestrationPolicy& policy, const char* label) {
  auto eviction = EveryKRequestsEviction::Create(1);
  if (!eviction.ok()) {
    std::exit(1);
  }
  SimOptions options;
  options.seed = 404;
  FunctionSimulation sim(profile, WorkloadRegistry::Default(), policy, **eviction,
                         options);
  auto report = sim.RunClosedLoop(500);
  if (!report.ok()) {
    std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
    std::exit(1);
  }
  const double median = report->MedianLatencyUs();
  std::printf("  %-24s median %9.0f us   (%llu checkpoints)\n", label, median,
              static_cast<unsigned long long>(report->checkpoints));
  return median;
}

}  // namespace

int main() {
  const auto profile = WorkloadRegistry::Default().Find("BFS");
  if (!profile.ok()) {
    std::fprintf(stderr, "%s\n", profile.status().ToString().c_str());
    return 1;
  }

  PolicyConfig config;
  config.beta = 1;
  config.pool_capacity = 12;
  config.max_checkpoint_request = 100;

  std::printf("Custom-policy plug-in demo on BFS (eviction rate 1, 500 requests)\n\n");
  std::printf("hand-tuned fixed checkpoint points:\n");
  for (uint64_t target : {1ull, 10ull, 50ull, 100ull}) {
    const FixedPointPolicy policy(config, target);
    const std::string label = "fixed-point N=" + std::to_string(target);
    RunAndReportMedian(**profile, policy, label.c_str());
  }

  std::printf("\nlearned orchestration:\n");
  const auto request_centric = RequestCentricPolicy::Create(config);
  if (!request_centric.ok()) {
    std::fprintf(stderr, "%s\n", request_centric.status().ToString().c_str());
    return 1;
  }
  RunAndReportMedian(**profile, *request_centric, "request-centric");

  std::printf("\nThe best fixed N is workload-specific (and drifts with inputs);\n"
              "the request-centric policy finds the good region automatically and\n"
              "keeps adapting -- without the operator guessing N.\n");
  return 0;
}
