#!/usr/bin/env python3
"""Compare a BENCH_perf_suite.json run against a committed baseline.

Direction-aware, noise-aware perf gate:

  bench_compare.py --baseline BENCH_perf_suite.json \\
                   --current  build/BENCH_perf_suite.json \\
                   --budget   0.10

For every metric present in the baseline, the relative regression is

    direction "higher":  (baseline - current) / baseline
    direction "lower":   (current - baseline) / baseline

and the run FAILS if any metric regresses by more than the budget plus the
measured noise floor (the larger spread_pct of the two runs). Improvements
never fail. Metrics only in the current run are reported as new; metrics
only in the baseline fail the run (a silently dropped metric is how a
regression hides).

When the two files were produced on machines with different hardware thread
counts, absolute comparison is meaningless; the tool then only checks that
every baseline metric still exists and that determinism_ok holds, and says so
loudly. This keeps the committed single-core baseline from failing CI's
multi-core runners while still gating on coverage and correctness.

`--self-test` proves the gate actually trips: it synthesizes a 20% regression
of every metric from the baseline and asserts the comparison fails, then
re-compares the baseline against itself and asserts it passes.
"""

import argparse
import copy
import json
import sys


def load(path):
    with open(path, "r", encoding="utf-8") as f:
        doc = json.load(f)
    if doc.get("benchmark") != "perf_suite":
        raise SystemExit(f"{path}: not a perf_suite JSON (benchmark={doc.get('benchmark')!r})")
    return doc


def metric_map(doc):
    return {m["name"]: m for m in doc.get("metrics", [])}


def compare(baseline, current, budget):
    """Returns (failures, report_lines)."""
    failures = []
    lines = []

    if not current.get("determinism_ok", True):
        failures.append("determinism_ok is false in the current run")

    base_metrics = metric_map(baseline)
    cur_metrics = metric_map(current)

    base_machine = baseline.get("machine", {})
    cur_machine = current.get("machine", {})
    same_machine_class = base_machine.get("hardware_threads") == cur_machine.get(
        "hardware_threads"
    )
    if not same_machine_class:
        lines.append(
            "NOTE: baseline ran on %s hardware threads, current on %s -- "
            "absolute values are incomparable; gating on metric coverage and "
            "determinism only."
            % (
                base_machine.get("hardware_threads", "?"),
                cur_machine.get("hardware_threads", "?"),
            )
        )

    for name, base in sorted(base_metrics.items()):
        cur = cur_metrics.get(name)
        if cur is None:
            failures.append(f"metric '{name}' present in baseline but missing from current run")
            continue
        base_value = float(base["value"])
        cur_value = float(cur["value"])
        direction = base.get("direction", "higher")
        if base_value == 0:
            lines.append(f"  {name}: baseline is 0, skipping ratio")
            continue
        if direction == "higher":
            regression = (base_value - cur_value) / abs(base_value)
        else:
            regression = (cur_value - base_value) / abs(base_value)
        noise = max(float(base.get("spread_pct", 0)), float(cur.get("spread_pct", 0))) / 100.0
        allowed = budget + noise
        verdict = "ok"
        if regression > allowed:
            verdict = "REGRESSION"
        elif regression < -0.005:
            verdict = "improved"
        lines.append(
            f"  {name}: {base_value:.3f} -> {cur_value:.3f} "
            f"({-regression * 100.0:+.1f}%, allowed -{allowed * 100.0:.1f}%) {verdict}"
        )
        if same_machine_class and regression > allowed:
            failures.append(
                f"metric '{name}' regressed {regression * 100.0:.1f}% "
                f"(budget {budget * 100.0:.0f}% + noise {noise * 100.0:.1f}%)"
            )

    for name in sorted(set(cur_metrics) - set(base_metrics)):
        lines.append(f"  {name}: new metric (not in baseline), not gated")

    return failures, lines


def self_test(baseline_path, budget):
    baseline = load(baseline_path)

    # A 20% uniform slowdown must trip a 10% gate even after the noise
    # allowance -- unless the measured noise already swallows it, which would
    # mean the baseline itself is too noisy to gate on. Surface that too.
    degraded = copy.deepcopy(baseline)
    for metric in degraded.get("metrics", []):
        if metric.get("direction", "higher") == "higher":
            metric["value"] = float(metric["value"]) * 0.80
        else:
            metric["value"] = float(metric["value"]) * 1.25
    failures, _ = compare(baseline, degraded, budget)
    if not failures:
        print("self-test FAILED: a synthetic 20% regression passed the gate", file=sys.stderr)
        return 1

    identical_failures, _ = compare(baseline, copy.deepcopy(baseline), budget)
    if identical_failures:
        print("self-test FAILED: a baseline compared against itself did not pass:", file=sys.stderr)
        for failure in identical_failures:
            print(f"  {failure}", file=sys.stderr)
        return 1

    print(
        f"self-test OK: synthetic 20% regression trips the {budget * 100.0:.0f}% gate "
        f"({len(failures)} metrics flagged); identity comparison passes"
    )
    return 0


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--baseline", required=True, help="committed BENCH_perf_suite.json")
    parser.add_argument("--current", help="freshly produced BENCH_perf_suite.json")
    parser.add_argument(
        "--budget",
        type=float,
        default=0.10,
        help="allowed relative regression per metric before noise (default 0.10)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate trips on a synthetic 20%% regression of the baseline",
    )
    args = parser.parse_args()

    if args.self_test:
        return self_test(args.baseline, args.budget)

    if not args.current:
        parser.error("--current is required unless --self-test")

    baseline = load(args.baseline)
    current = load(args.current)
    failures, lines = compare(baseline, current, args.budget)

    print(f"perf comparison (budget {args.budget * 100.0:.0f}% per metric):")
    for line in lines:
        print(line)
    if failures:
        print("\nFAIL:", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print("\nPASS: no metric regressed beyond budget + noise")
    return 0


if __name__ == "__main__":
    sys.exit(main())
