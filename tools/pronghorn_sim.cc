// pronghorn_sim: command-line driver for the simulator.
//
// Every mode routes through the unified Simulate() entry point
// (src/platform/simulate.h); the mode flags only choose the topology and how
// the function list is built.
//
// Single-function mode runs one benchmark under one policy and eviction
// regime, prints a summary, and optionally exports the per-request records as
// CSV (the artifact's results/ format) for external plotting.
//
//   pronghorn_sim --benchmark DynamicHTML --policy request-centric
//                 --eviction 1 --requests 500 --seed 42 --csv out.csv
//
// Fleet mode (--fleet N) deploys N functions cycling through the paper's
// evaluation set and runs them as independent shards on a work-stealing
// thread pool (--threads, default hardware concurrency). The merged report
// is bit-identical for any thread count; the printed digest makes that
// checkable from the shell:
//
//   pronghorn_sim --fleet 100 --requests 200 --threads 8 --seed 42
//
// Platform mode (--platform N) deploys N functions from the evaluation set
// into one shared control plane (one Database + Object Store for everyone)
// and drives a closed loop across all of them; the printed digest is
// comparable with a one-function fleet digest:
//
//   pronghorn_sim --platform 4 --requests 200 --seed 42
//
// Observability (any mode): --trace-out FILE records worker-lifecycle spans
// as Chrome trace JSON (open in chrome://tracing or https://ui.perfetto.dev),
// --metrics-out FILE dumps the counters/gauges/histograms as JSON, and
// --histogram prints latency histograms to stdout. None of these change the
// simulation: digests are bit-identical with observability on or off.
//
// The --seed/--engine/--no-noise/--fault-* flags mean the same thing in all
// three modes and are parsed once (ParseCommonSimOptions).
//
// Policies: cold | after-first | request-centric | stop-condition
// Eviction: integer k (every-k), "geometric:<mean>", or "idle:<seconds>".

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <system_error>
#include <vector>

#include "src/common/flags.h"
#include "src/common/thread_pool.h"
#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/core/stop_condition_policy.h"
#include "src/obs/sink.h"
#include "src/platform/report_io.h"
#include "src/platform/simulate.h"
#include "src/trace/azure_model.h"

using namespace pronghorn;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// One eviction-spec grammar for every mode; each deployment instantiates its
// own model from its sub-seed inside Simulate().
Result<FleetEvictionSpec> ParseEvictionSpec(const std::string& spec) {
  FleetEvictionSpec parsed;
  if (spec.rfind("geometric:", 0) == 0) {
    parsed.kind = FleetEvictionSpec::Kind::kGeometric;
    parsed.mean_requests = std::strtod(spec.c_str() + 10, nullptr);
    if (parsed.mean_requests < 1.0) {
      return InvalidArgumentError("geometric mean must be >= 1");
    }
    return parsed;
  }
  if (spec.rfind("idle:", 0) == 0) {
    const double seconds = std::strtod(spec.c_str() + 5, nullptr);
    if (seconds <= 0) {
      return InvalidArgumentError("idle timeout must be positive");
    }
    parsed.kind = FleetEvictionSpec::Kind::kIdleTimeout;
    parsed.idle_timeout = Duration::Seconds(seconds);
    return parsed;
  }
  parsed.kind = FleetEvictionSpec::Kind::kEveryK;
  parsed.k = std::strtoull(spec.c_str(), nullptr, 10);
  if (parsed.k == 0) {
    return InvalidArgumentError("eviction k must be >= 1");
  }
  return parsed;
}

Result<PolicyConfig> MakeConfig(const WorkloadProfile& profile, const FlagParser& flags,
                                uint64_t eviction_k) {
  PolicyConfig config;
  config.beta = static_cast<uint32_t>(*flags.GetInt("beta"));
  if (config.beta == 0) {
    config.beta = eviction_k > 0 ? static_cast<uint32_t>(eviction_k) : 4;
  }
  config.pool_capacity = static_cast<uint32_t>(*flags.GetInt("pool"));
  config.max_checkpoint_request = static_cast<uint32_t>(*flags.GetInt("w"));
  if (config.max_checkpoint_request == 0) {
    config.max_checkpoint_request = profile.family == RuntimeFamily::kJvm ? 200 : 100;
  }
  PRONGHORN_RETURN_IF_ERROR(config.Validate());
  return config;
}

// Grammar: "start:end" (seconds) with an optional "@store" / "@db" domain
// suffix, comma-separated. Example: --fault-outage 10:12@db,30:31
Result<std::vector<FaultWindow>> ParseOutageWindows(const std::string& spec) {
  std::vector<FaultWindow> windows;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }
    FaultWindow window;
    window.kind = FaultWindow::Kind::kOutage;
    const size_t at = item.find('@');
    if (at != std::string::npos) {
      const std::string domain = item.substr(at + 1);
      if (domain == "store") {
        window.domain = FaultDomain::kObjectStore;
      } else if (domain == "db") {
        window.domain = FaultDomain::kDatabase;
      } else {
        return InvalidArgumentError("outage domain must be 'store' or 'db', got '" +
                                    domain + "'");
      }
      item = item.substr(0, at);
    }
    const size_t colon = item.find(':');
    if (colon == std::string::npos) {
      return InvalidArgumentError("outage window needs start:end, got '" + item + "'");
    }
    const double start = std::strtod(item.c_str(), nullptr);
    const double stop = std::strtod(item.c_str() + colon + 1, nullptr);
    if (stop <= start) {
      return InvalidArgumentError("outage window end must be after start");
    }
    window.start = TimePoint() + Duration::Seconds(start);
    window.end = TimePoint() + Duration::Seconds(stop);
    windows.push_back(window);
  }
  return windows;
}

// Grammar: "start:end:extra_ms" (seconds, seconds, milliseconds),
// comma-separated. Example: --fault-latency 5:8:250
Result<std::vector<FaultWindow>> ParseLatencyWindows(const std::string& spec) {
  std::vector<FaultWindow> windows;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }
    const size_t first = item.find(':');
    const size_t second = first == std::string::npos ? std::string::npos
                                                     : item.find(':', first + 1);
    if (second == std::string::npos) {
      return InvalidArgumentError("latency window needs start:end:ms, got '" + item +
                                  "'");
    }
    const double start = std::strtod(item.c_str(), nullptr);
    const double stop = std::strtod(item.c_str() + first + 1, nullptr);
    const double extra_ms = std::strtod(item.c_str() + second + 1, nullptr);
    if (stop <= start || extra_ms <= 0) {
      return InvalidArgumentError("latency window needs end > start and ms > 0");
    }
    FaultWindow window;
    window.kind = FaultWindow::Kind::kLatency;
    window.start = TimePoint() + Duration::Seconds(start);
    window.end = TimePoint() + Duration::Seconds(stop);
    window.extra_latency = Duration::Millis(static_cast<int64_t>(extra_ms));
    windows.push_back(window);
  }
  return windows;
}

// Grammar: "shard:op:stage", comma-separated; stage is one of enqueue,
// mid-batch, pre-truncate. Example: --crash-plan 0:25:mid-batch,2:40:enqueue
Result<std::vector<ServiceCrash>> ParseCrashPlan(const std::string& spec) {
  std::vector<ServiceCrash> crashes;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }
    const size_t first = item.find(':');
    const size_t second = first == std::string::npos ? std::string::npos
                                                     : item.find(':', first + 1);
    if (second == std::string::npos) {
      return InvalidArgumentError("crash needs shard:op:stage, got '" + item + "'");
    }
    ServiceCrash crash;
    crash.shard = static_cast<uint32_t>(std::strtoul(item.c_str(), nullptr, 10));
    crash.at_op = std::strtoull(item.c_str() + first + 1, nullptr, 10);
    const std::string stage = item.substr(second + 1);
    if (stage == "enqueue") {
      crash.stage = ServiceCrashStage::kEnqueue;
    } else if (stage == "mid-batch") {
      crash.stage = ServiceCrashStage::kMidBatch;
    } else if (stage == "pre-truncate") {
      crash.stage = ServiceCrashStage::kPreTruncate;
    } else {
      return InvalidArgumentError(
          "crash stage must be enqueue, mid-batch, or pre-truncate; got '" +
          stage + "'");
    }
    if (crash.at_op == 0) {
      return InvalidArgumentError("crash op index is 1-based; got 0");
    }
    crashes.push_back(crash);
  }
  return crashes;
}

// Grammar: "shard:op:wall_ms", comma-separated. Example: --stall-plan 1:10:50
Result<std::vector<ServiceStall>> ParseStallPlan(const std::string& spec) {
  std::vector<ServiceStall> stalls;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string item = spec.substr(pos, end - pos);
    pos = end + 1;
    if (item.empty()) {
      continue;
    }
    const size_t first = item.find(':');
    const size_t second = first == std::string::npos ? std::string::npos
                                                     : item.find(':', first + 1);
    if (second == std::string::npos) {
      return InvalidArgumentError("stall needs shard:op:ms, got '" + item + "'");
    }
    ServiceStall stall;
    stall.shard = static_cast<uint32_t>(std::strtoul(item.c_str(), nullptr, 10));
    stall.at_op = std::strtoull(item.c_str() + first + 1, nullptr, 10);
    stall.wall_millis =
        static_cast<uint32_t>(std::strtoul(item.c_str() + second + 1, nullptr, 10));
    if (stall.at_op == 0 || stall.wall_millis == 0) {
      return InvalidArgumentError("stall needs a 1-based op and ms > 0");
    }
    stalls.push_back(stall);
  }
  return stalls;
}

Result<FaultPlan> ParseFaultPlan(const FlagParser& flags) {
  FaultPlan plan;
  PRONGHORN_ASSIGN_OR_RETURN(const double rate, flags.GetDouble("fault-rate"));
  PRONGHORN_ASSIGN_OR_RETURN(const double corrupt, flags.GetDouble("fault-corrupt"));
  PRONGHORN_ASSIGN_OR_RETURN(const double torn, flags.GetDouble("fault-torn"));
  if (rate < 0 || rate > 1 || corrupt < 0 || corrupt > 1 || torn < 0 || torn > 1) {
    return InvalidArgumentError("fault rates must be in [0, 1]");
  }
  plan.get_failure_rate = rate;
  plan.put_failure_rate = rate;
  plan.delete_failure_rate = rate;
  plan.metadata_failure_rate = rate;
  plan.corruption_rate = corrupt;
  plan.torn_write_rate = torn;
  PRONGHORN_ASSIGN_OR_RETURN(const double chunk_corrupt,
                             flags.GetDouble("fault-chunk-corrupt"));
  PRONGHORN_ASSIGN_OR_RETURN(const double manifest_corrupt,
                             flags.GetDouble("fault-manifest-corrupt"));
  if (chunk_corrupt < 0 || chunk_corrupt > 1 || manifest_corrupt < 0 ||
      manifest_corrupt > 1) {
    return InvalidArgumentError("fault rates must be in [0, 1]");
  }
  plan.chunk_corruption_rate = chunk_corrupt;
  plan.manifest_corruption_rate = manifest_corrupt;
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t fault_seed, flags.GetInt("fault-seed"));
  plan.seed = static_cast<uint64_t>(fault_seed);
  PRONGHORN_ASSIGN_OR_RETURN(auto outages,
                             ParseOutageWindows(*flags.GetString("fault-outage")));
  PRONGHORN_ASSIGN_OR_RETURN(auto spikes,
                             ParseLatencyWindows(*flags.GetString("fault-latency")));
  plan.windows = std::move(outages);
  plan.windows.insert(plan.windows.end(), spikes.begin(), spikes.end());
  return plan;
}

// The flags every mode shares: --seed, --engine, --no-noise, and the whole
// --fault-* family. Parsed once so single, fleet, and platform runs cannot
// drift apart in how they interpret them.
struct CommonSimOptions {
  uint64_t seed = 1;
  EngineKind engine_kind = EngineKind::kCriuLike;
  bool input_noise = true;
  bool state_cache = true;
  FaultPlan faults;
  SnapshotStoreOptions store;
  ServiceModeOptions service;
  RetentionOptions retention;
  SimCheckpointOptions sim_checkpoint;
};

// --store / --chunk-size / --cdc / --lazy-restore → SnapshotStoreOptions.
// Chunk-granular knobs require --store=dedup: on a flat build they would
// silently do nothing, which reads as a measurement when it is a typo.
Result<SnapshotStoreOptions> ParseStoreOptions(const FlagParser& flags) {
  SnapshotStoreOptions store;
  const std::string kind = *flags.GetString("store");
  if (kind == "dedup") {
    store.kind = SnapshotStoreOptions::Kind::kDedup;
  } else if (kind != "flat") {
    return InvalidArgumentError("unknown --store '" + kind +
                                "' (expected flat or dedup)");
  }
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t chunk_size, flags.GetInt("chunk-size"));
  if (chunk_size < 64 || chunk_size > (64 << 20)) {
    return InvalidArgumentError("--chunk-size must be in [64, 64Mi]");
  }
  store.chunker.chunk_size = static_cast<uint32_t>(chunk_size);
  store.chunker.min_size = static_cast<uint32_t>(std::max<int64_t>(64, chunk_size / 4));
  store.chunker.max_size = static_cast<uint32_t>(chunk_size * 4);
  store.chunker.cdc = flags.GetBool("cdc").value_or(false);
  store.lazy_restore = flags.GetBool("lazy-restore").value_or(false);
  if (store.kind == SnapshotStoreOptions::Kind::kFlat &&
      (store.chunker.cdc || store.lazy_restore ||
       store.chunker.chunk_size != 4096)) {
    return InvalidArgumentError(
        "--chunk-size, --cdc, and --lazy-restore require --store=dedup");
  }
  return store;
}

Result<CommonSimOptions> ParseCommonSimOptions(const FlagParser& flags) {
  CommonSimOptions common;
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t seed, flags.GetInt("seed"));
  common.seed = static_cast<uint64_t>(seed);
  const std::string engine_name = *flags.GetString("engine");
  if (engine_name == "delta") {
    common.engine_kind = EngineKind::kDelta;
  } else if (engine_name != "criu") {
    return InvalidArgumentError("unknown engine '" + engine_name + "'");
  }
  common.input_noise = !flags.GetBool("no-noise").value_or(false);
  common.state_cache = !flags.GetBool("no-state-cache").value_or(false);
  PRONGHORN_ASSIGN_OR_RETURN(common.faults, ParseFaultPlan(flags));
  PRONGHORN_ASSIGN_OR_RETURN(common.store, ParseStoreOptions(flags));
  if ((common.faults.chunk_corruption_rate > 0 ||
       common.faults.manifest_corruption_rate > 0) &&
      common.store.kind != SnapshotStoreOptions::Kind::kDedup) {
    return InvalidArgumentError(
        "--fault-chunk-corrupt and --fault-manifest-corrupt require "
        "--store=dedup");
  }
  common.service.enabled = flags.GetBool("service").value_or(false);
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t shards, flags.GetInt("service-shards"));
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t batch, flags.GetInt("service-batch"));
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t flush_ms, flags.GetInt("flush-interval"));
  if (shards <= 0 || batch <= 0 || flush_ms < 0) {
    return InvalidArgumentError(
        "--service-shards and --service-batch must be positive, "
        "--flush-interval non-negative");
  }
  common.service.shards = static_cast<uint32_t>(shards);
  common.service.max_batch = static_cast<uint32_t>(batch);
  common.service.flush_interval = Duration::Millis(flush_ms);

  // Crash-tolerance knobs: all three require --service (they configure the
  // live service, which otherwise does not exist), and a crash/stall plan
  // naming a shard the topology does not have is a hard configuration error —
  // a fault that can never fire is a typo, not chaos.
  common.service.journal_dir = *flags.GetString("journal-dir");
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t shed_ms, flags.GetInt("shed-deadline"));
  if (shed_ms < 0) {
    return InvalidArgumentError("--shed-deadline must be non-negative");
  }
  common.service.shed_deadline_ms = static_cast<uint32_t>(shed_ms);
  PRONGHORN_ASSIGN_OR_RETURN(common.faults.service.crashes,
                             ParseCrashPlan(*flags.GetString("crash-plan")));
  PRONGHORN_ASSIGN_OR_RETURN(common.faults.service.stalls,
                             ParseStallPlan(*flags.GetString("stall-plan")));
  if (!common.service.enabled &&
      (!common.service.journal_dir.empty() || common.service.shed_deadline_ms > 0 ||
       common.faults.service.Active())) {
    return InvalidArgumentError(
        "--journal-dir, --shed-deadline, --crash-plan, and --stall-plan "
        "require --service");
  }
  if (common.faults.service.Active() &&
      common.faults.service.MaxShardNamed() >= common.service.shards) {
    return InvalidArgumentError(
        "crash/stall plan names shard " +
        std::to_string(common.faults.service.MaxShardNamed()) +
        " but the service only has " + std::to_string(common.service.shards) +
        " shards (0-" + std::to_string(common.service.shards - 1) + ")");
  }
  if (!common.service.journal_dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(common.service.journal_dir, ec);
    if (ec) {
      return InvalidArgumentError("cannot create --journal-dir '" +
                                  common.service.journal_dir + "': " + ec.message());
    }
  }

  // Streaming retention + resumable-checkpoint knobs.
  PRONGHORN_ASSIGN_OR_RETURN(common.retention.mode,
                             ParseRetention(*flags.GetString("retention")));
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t retention_k,
                             flags.GetInt("retention-k"));
  if (retention_k <= 0) {
    return InvalidArgumentError("--retention-k must be positive");
  }
  common.retention.k = static_cast<uint64_t>(retention_k);
  common.retention.seed = common.seed;
  common.sim_checkpoint.dir = *flags.GetString("sim-checkpoint-dir");
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t ckpt_every,
                             flags.GetInt("sim-checkpoint-every"));
  if (ckpt_every <= 0) {
    return InvalidArgumentError("--sim-checkpoint-every must be positive");
  }
  common.sim_checkpoint.every = static_cast<uint64_t>(ckpt_every);
  common.sim_checkpoint.resume = flags.GetBool("resume").value_or(false);
  if (common.sim_checkpoint.resume && common.sim_checkpoint.dir.empty()) {
    return InvalidArgumentError("--resume requires --sim-checkpoint-dir");
  }
  if (!common.sim_checkpoint.dir.empty()) {
    std::error_code ec;
    std::filesystem::create_directories(common.sim_checkpoint.dir, ec);
    if (ec) {
      return InvalidArgumentError("cannot create --sim-checkpoint-dir '" +
                                  common.sim_checkpoint.dir + "': " + ec.message());
    }
  }
  return common;
}

Result<uint32_t> ParseThreads(const FlagParser& flags) {
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t threads, flags.GetInt("threads"));
  if (threads < 0 || threads > ThreadPool::kMaxThreads) {
    return InvalidArgumentError("--threads must be in [0, " +
                                std::to_string(ThreadPool::kMaxThreads) + "]");
  }
  return static_cast<uint32_t>(threads);
}

// Builds the observability sink when any of --trace-out / --metrics-out /
// --histogram asks for one; returns nullptr (observability fully disabled,
// the zero-cost path) otherwise.
std::unique_ptr<StandardObs> MakeObsSink(const FlagParser& flags) {
  const bool want_trace = !flags.GetString("trace-out")->empty();
  const bool want_metrics =
      !flags.GetString("metrics-out")->empty() ||
      flags.GetBool("histogram").value_or(false);
  if (!want_trace && !want_metrics) {
    return nullptr;
  }
  StandardObs::Options options;
  options.trace = want_trace;
  options.metrics = true;  // Counters are cheap; keep them for either output.
  return std::make_unique<StandardObs>(options);
}

// Writes the artifacts the observability flags asked for.
Status ExportObs(const FlagParser& flags, const SimReport& report) {
  const std::string trace_path = *flags.GetString("trace-out");
  if (!trace_path.empty()) {
    if (report.trace == nullptr) {
      return InternalError("trace requested but no recorder attached");
    }
    PRONGHORN_RETURN_IF_ERROR(report.trace->WriteChromeJson(trace_path));
    std::printf("wrote trace (%llu events, %llu dropped) to %s\n",
                static_cast<unsigned long long>(report.trace->recorded() -
                                                report.trace->dropped()),
                static_cast<unsigned long long>(report.trace->dropped()),
                trace_path.c_str());
  }
  const std::string metrics_path = *flags.GetString("metrics-out");
  if (!metrics_path.empty()) {
    std::ofstream out(metrics_path, std::ios::binary);
    out << report.metrics.ToJson();
    if (!out.good()) {
      return InternalError("failed to write metrics JSON to " + metrics_path);
    }
    std::printf("wrote metrics to %s\n", metrics_path.c_str());
  }
  if (flags.GetBool("histogram").value_or(false)) {
    if (report.metrics.histograms.empty()) {
      std::printf("histograms: (none recorded)\n");
    }
    for (const auto& [name, histogram] : report.metrics.histograms) {
      std::printf("histogram %s: count=%llu p50=%.0f p90=%.0f p99=%.0f max=%llu\n"
                  "  |%s|\n",
                  name.c_str(), static_cast<unsigned long long>(histogram.count()),
                  histogram.Quantile(50), histogram.Quantile(90),
                  histogram.Quantile(99),
                  static_cast<unsigned long long>(histogram.max()),
                  histogram.ToAsciiArt().c_str());
    }
  }
  return OkStatus();
}

void PrintFaultLine(const FaultRecoveryStats& faults) {
  std::printf("faults: store=%llu db=%llu corrupted=%llu torn=%llu "
              "fallbacks=%llu quarantined=%llu degraded=%llu replayed=%llu "
              "ckpt_skipped=%llu\n",
              static_cast<unsigned long long>(faults.store_faults),
              static_cast<unsigned long long>(faults.db_faults),
              static_cast<unsigned long long>(faults.corrupted_puts),
              static_cast<unsigned long long>(faults.torn_puts),
              static_cast<unsigned long long>(faults.restore_fallbacks),
              static_cast<unsigned long long>(faults.snapshots_quarantined),
              static_cast<unsigned long long>(faults.degraded_starts),
              static_cast<unsigned long long>(faults.observations_replayed),
              static_cast<unsigned long long>(faults.checkpoints_skipped));
}

// A policy plus whatever inner policy it wraps (stop-condition keeps per-
// instance exploration state, so fleet mode builds one pair per deployment).
struct OwnedPolicy {
  std::unique_ptr<OrchestrationPolicy> policy;
  std::unique_ptr<RequestCentricPolicy> inner;
};

Result<OwnedPolicy> BuildPolicy(const std::string& name, const PolicyConfig& config,
                                uint64_t explore_budget) {
  OwnedPolicy owned;
  if (name == "cold") {
    owned.policy = std::make_unique<ColdStartPolicy>(config);
  } else if (name == "after-first") {
    owned.policy = std::make_unique<CheckpointAfterFirstPolicy>(config);
  } else if (name == "request-centric" || name == "stop-condition") {
    PRONGHORN_ASSIGN_OR_RETURN(auto rc, RequestCentricPolicy::Create(config));
    if (name == "request-centric") {
      owned.policy = std::make_unique<RequestCentricPolicy>(std::move(rc));
    } else {
      owned.inner = std::make_unique<RequestCentricPolicy>(std::move(rc));
      uint64_t budget = explore_budget;
      if (budget == 0) {
        budget = config.max_checkpoint_request + 100;  // The paper's bound.
      }
      owned.policy = std::make_unique<StopConditionPolicy>(*owned.inner, budget);
    }
  } else {
    return InvalidArgumentError("unknown policy '" + name + "'");
  }
  return owned;
}

// Fleet mode: scales one deployment's closed-loop request count by how much
// busier or quieter the arrival mix says it is than the model's median
// function. Deterministic in (mix, seed, index, count); the scale is clamped
// to [1/8, 8]x so a 99th-percentile tenant cannot swamp the run.
uint64_t MixScaledRequests(uint64_t requests, ArrivalMix mix, uint64_t seed,
                           uint64_t index, uint64_t count) {
  if (mix == ArrivalMix::kSteady) {
    return requests;  // Homogeneous: the historical default, digest-stable.
  }
  const AzureTraceModel model;
  const FunctionArrivalSpec arrival = ArrivalSpecFor(mix, seed, index, count);
  const Result<double> daily = model.DailyInvocationsAtPercentile(arrival.percentile);
  const Result<double> median = model.DailyInvocationsAtPercentile(50.0);
  if (!daily.ok() || !median.ok() || *median <= 0.0) {
    return requests;
  }
  const double scale = std::clamp(*daily / *median, 0.125, 8.0);
  const double scaled = static_cast<double>(requests) * scale;
  return std::max<uint64_t>(1, static_cast<uint64_t>(scaled));
}

// Builds specs cycling through the evaluation set (fleet and platform modes).
// `mix`, when non-null (fleet mode), makes the fleet heterogeneous: each
// deployment's request count follows its popularity under the arrival mix.
Result<std::vector<SimFunctionSpec>> BuildEvaluationSpecs(
    const FlagParser& flags, int64_t count, uint64_t requests,
    uint64_t eviction_k, bool unique_names,
    std::vector<OwnedPolicy>& policies, const ArrivalMix* mix = nullptr) {
  const auto evaluation = WorkloadRegistry::Default().EvaluationSet();
  const std::string policy_name = *flags.GetString("policy");
  PRONGHORN_ASSIGN_OR_RETURN(const int64_t seed, flags.GetInt("seed"));
  std::vector<SimFunctionSpec> specs;
  specs.reserve(static_cast<size_t>(count));
  policies.reserve(static_cast<size_t>(count));
  for (int64_t i = 0; i < count; ++i) {
    const WorkloadProfile& profile =
        *evaluation[static_cast<size_t>(i) % evaluation.size()];
    PRONGHORN_ASSIGN_OR_RETURN(PolicyConfig config,
                               MakeConfig(profile, flags, eviction_k));
    PRONGHORN_ASSIGN_OR_RETURN(
        OwnedPolicy policy,
        BuildPolicy(policy_name, config,
                    static_cast<uint64_t>(*flags.GetInt("explore-budget"))));
    policies.push_back(std::move(policy));

    SimFunctionSpec spec;
    if (unique_names) {
      char name[64];
      std::snprintf(name, sizeof(name), "f%04lld-%s", static_cast<long long>(i),
                    profile.name.c_str());
      spec.name = name;
    } else {
      spec.name = profile.name;
    }
    spec.profile = &profile;
    spec.policy = policies.back().policy.get();
    spec.requests =
        mix == nullptr
            ? requests
            : MixScaledRequests(requests, *mix, static_cast<uint64_t>(seed),
                                static_cast<uint64_t>(i),
                                static_cast<uint64_t>(count));
    specs.push_back(std::move(spec));
  }
  return specs;
}

int RunFleet(const FlagParser& flags, const CommonSimOptions& common,
             uint64_t requests) {
  const int64_t fleet_size = *flags.GetInt("fleet");
  const int64_t slots = *flags.GetInt("slots");
  const int64_t exploring = *flags.GetInt("exploring");
  auto threads = ParseThreads(flags);
  if (!threads.ok()) {
    return Fail(threads.status());
  }
  if (slots <= 0 || exploring < 0) {
    return Fail(InvalidArgumentError("--slots must be > 0 and --exploring >= 0"));
  }
  const std::string eviction_spec = *flags.GetString("eviction");
  auto eviction = ParseEvictionSpec(eviction_spec);
  if (!eviction.ok()) {
    return Fail(eviction.status());
  }
  const uint64_t eviction_k =
      eviction->kind == FleetEvictionSpec::Kind::kEveryK ? eviction->k : 0;

  SimOptions options;
  options.seed = common.seed;
  options.threads = *threads;
  options.pin_threads = *flags.GetBool("pin-threads");
  options.engine_kind = common.engine_kind;
  options.input_noise = common.input_noise;
  options.state_cache = common.state_cache;
  options.eviction = *eviction;
  options.faults = common.faults;
  options.store = common.store;
  options.service = common.service;
  options.retention = common.retention;
  options.sim_checkpoint = common.sim_checkpoint;
  options.worker_slots = static_cast<uint32_t>(slots);
  options.exploring_slots = static_cast<uint32_t>(exploring);

  auto mix = ParseArrivalMix(*flags.GetString("arrival-mix"));
  if (!mix.ok()) {
    return Fail(mix.status());
  }
  std::vector<OwnedPolicy> policies;
  auto specs = BuildEvaluationSpecs(flags, fleet_size, requests, eviction_k,
                                    /*unique_names=*/true, policies, &*mix);
  if (!specs.ok()) {
    return Fail(specs.status());
  }

  const std::unique_ptr<StandardObs> obs = MakeObsSink(flags);
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kFleet, *specs,
                         options, obs.get());
  if (!report.ok()) {
    return Fail(report.status());
  }
  const uint32_t effective_threads = ThreadPool::EffectiveParallelism(options.threads);
  const std::string policy_name = *flags.GetString("policy");
  std::printf("fleet=%lld policy=%s eviction=%s threads=%u mix=%s\n",
              static_cast<long long>(fleet_size), policy_name.c_str(),
              eviction_spec.c_str(), effective_threads,
              std::string(ArrivalMixName(*mix)).c_str());
  if (report->retention != ReportRetention::kAll) {
    std::printf("retention=%s k=%llu functions=%llu invocations=%llu "
                "(per-function detail decimated; digest covers all)\n",
                std::string(RetentionLabel(report->retention)).c_str(),
                static_cast<unsigned long long>(common.retention.k),
                static_cast<unsigned long long>(report->functions_total),
                static_cast<unsigned long long>(report->invocations_total));
  }
  // Under bounded retention the sample-exact summary is empty; the bucket-
  // exact histogram covers every invocation in all modes.
  const bool bounded = report->retention != ReportRetention::kAll;
  std::printf("requests=%llu p50_us=%.0f p90_us=%.0f p99_us=%.0f lifetimes=%llu "
              "cold=%llu restores=%llu checkpoints=%llu digest=%08x\n",
              static_cast<unsigned long long>(
                  bounded ? report->invocations_total : report->latency.count()),
              bounded ? report->latency_hist.Quantile(50)
                      : report->latency.Quantile(50),
              bounded ? report->latency_hist.Quantile(90)
                      : report->latency.Quantile(90),
              bounded ? report->latency_hist.Quantile(99)
                      : report->latency.Quantile(99),
              static_cast<unsigned long long>(report->worker_lifetimes),
              static_cast<unsigned long long>(report->cold_starts),
              static_cast<unsigned long long>(report->restores),
              static_cast<unsigned long long>(report->checkpoints),
              report->Digest());
  if (options.faults.Active()) {
    PrintFaultLine(report->faults);
  }

  const size_t shown = std::min<size_t>(report->per_function.size(), 8);
  for (size_t i = 0; i < shown; ++i) {
    const auto& [function, cluster] = report->per_function[i];
    std::printf("  %-24s p50_us=%9.0f checkpoints=%4llu restores=%4llu\n",
                function.c_str(), cluster.LatencySummary().Median(),
                static_cast<unsigned long long>(cluster.checkpoints),
                static_cast<unsigned long long>(cluster.restores));
  }
  if (report->per_function.size() > shown) {
    std::printf("  ... %zu more deployments\n", report->per_function.size() - shown);
  }

  const std::string csv_path = *flags.GetString("csv");
  if (!csv_path.empty()) {
    // Merged records in canonical (name) order, renumbered globally.
    std::vector<RequestRecord> merged;
    merged.reserve(report->latency.count());
    for (const auto& [function, cluster] : report->per_function) {
      for (RequestRecord record : cluster.records) {
        record.global_index = merged.size();
        merged.push_back(record);
      }
    }
    SimulationReport csv_report;
    csv_report.records = std::move(merged);
    if (Status s = WriteRecordsCsv(csv_report, csv_path); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %zu records to %s\n", csv_report.records.size(),
                csv_path.c_str());
  }
  if (Status s = ExportObs(flags, *report); !s.ok()) {
    return Fail(s);
  }
  return 0;
}

int RunPlatform(const FlagParser& flags, const CommonSimOptions& common,
                uint64_t requests) {
  const int64_t platform_size = *flags.GetInt("platform");
  const std::string eviction_spec = *flags.GetString("eviction");
  auto eviction = ParseEvictionSpec(eviction_spec);
  if (!eviction.ok()) {
    return Fail(eviction.status());
  }
  const auto evaluation = WorkloadRegistry::Default().EvaluationSet();
  if (platform_size > static_cast<int64_t>(evaluation.size())) {
    // Platform deployments are keyed by profile name, so each evaluation
    // function can be deployed at most once.
    return Fail(InvalidArgumentError(
        "--platform must be <= " + std::to_string(evaluation.size()) +
        " (the evaluation set; deployments are keyed by function name)"));
  }
  const uint64_t eviction_k =
      eviction->kind == FleetEvictionSpec::Kind::kEveryK ? eviction->k : 0;

  SimOptions options;
  options.seed = common.seed;
  options.engine_kind = common.engine_kind;
  options.input_noise = common.input_noise;
  options.state_cache = common.state_cache;
  options.eviction = *eviction;
  options.faults = common.faults;
  options.store = common.store;
  options.service = common.service;
  options.sim_checkpoint = common.sim_checkpoint;

  std::vector<OwnedPolicy> policies;
  auto specs = BuildEvaluationSpecs(flags, platform_size, requests, eviction_k,
                                    /*unique_names=*/false, policies);
  if (!specs.ok()) {
    return Fail(specs.status());
  }

  const std::unique_ptr<StandardObs> obs = MakeObsSink(flags);
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kPlatform,
                         *specs, options, obs.get());
  if (!report.ok()) {
    return Fail(report.status());
  }
  const std::string policy_name = *flags.GetString("policy");
  std::printf("platform=%lld policy=%s eviction=%s\n",
              static_cast<long long>(platform_size), policy_name.c_str(),
              eviction_spec.c_str());
  std::printf("requests=%zu p50_us=%.0f p90_us=%.0f p99_us=%.0f lifetimes=%llu "
              "checkpoints=%llu digest=%08x\n",
              report->latency.count(), report->latency.Quantile(50),
              report->latency.Quantile(90), report->latency.Quantile(99),
              static_cast<unsigned long long>(report->worker_lifetimes),
              static_cast<unsigned long long>(report->checkpoints),
              report->Digest());
  if (common.faults.Active()) {
    PrintFaultLine(report->faults);
  }
  for (const auto& [function, function_report] : report->per_function) {
    std::printf("  %-24s p50_us=%9.0f checkpoints=%4llu restores=%4llu\n",
                function.c_str(), function_report.LatencySummary().Median(),
                static_cast<unsigned long long>(function_report.checkpoints),
                static_cast<unsigned long long>(function_report.restores));
  }
  if (Status s = ExportObs(flags, *report); !s.ok()) {
    return Fail(s);
  }
  return 0;
}

int RunSingle(const FlagParser& flags, const CommonSimOptions& common,
              uint64_t requests) {
  const std::string benchmark = *flags.GetString("benchmark");
  auto profile = WorkloadRegistry::Default().Find(benchmark);
  if (!profile.ok()) {
    return Fail(profile.status());
  }

  const std::string eviction_spec = *flags.GetString("eviction");
  auto eviction = ParseEvictionSpec(eviction_spec);
  if (!eviction.ok()) {
    return Fail(eviction.status());
  }
  const uint64_t eviction_k =
      eviction->kind == FleetEvictionSpec::Kind::kEveryK ? eviction->k : 0;
  auto config = MakeConfig(**profile, flags, eviction_k);
  if (!config.ok()) {
    return Fail(config.status());
  }

  const std::string policy_name = *flags.GetString("policy");
  auto owned_policy =
      BuildPolicy(policy_name, *config,
                  static_cast<uint64_t>(*flags.GetInt("explore-budget")));
  if (!owned_policy.ok()) {
    return Fail(owned_policy.status());
  }

  SimOptions options;
  options.seed = common.seed;
  options.engine_kind = common.engine_kind;
  options.input_noise = common.input_noise;
  options.state_cache = common.state_cache;
  options.faults = common.faults;
  options.store = common.store;
  options.service = common.service;
  options.sim_checkpoint = common.sim_checkpoint;
  // Historical FunctionSimulation topology: one worker slot.
  options.worker_slots = 1;
  options.exploring_slots = 1;
  options.eviction = *eviction;

  SimFunctionSpec spec;
  spec.name = benchmark;
  spec.profile = *profile;
  spec.policy = owned_policy->policy.get();
  spec.requests = requests;

  const std::unique_ptr<StandardObs> obs = MakeObsSink(flags);
  auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                         std::span<const SimFunctionSpec>(&spec, 1), options,
                         obs.get());
  if (!report.ok()) {
    return Fail(report.status());
  }

  std::printf("%s policy=%s eviction=%s\n%s\n", benchmark.c_str(), policy_name.c_str(),
              eviction_spec.c_str(), SummarizeReport(report->flat()).c_str());

  const std::string csv_path = *flags.GetString("csv");
  if (!csv_path.empty()) {
    if (Status s = WriteRecordsCsv(report->flat(), csv_path); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %zu records to %s\n", report->flat().records.size(),
                csv_path.c_str());
  }
  const std::string summary_path = *flags.GetString("summary-csv");
  if (!summary_path.empty()) {
    if (Status s = WriteSummaryCsv(report->flat(), summary_path); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote summary to %s\n", summary_path.c_str());
  }
  if (Status s = ExportObs(flags, *report); !s.ok()) {
    return Fail(s);
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("benchmark", "DynamicHTML", "workload name (see --list)");
  flags.AddFlag("policy", "request-centric",
                "cold | after-first | request-centric | stop-condition");
  flags.AddFlag("eviction", "1", "k | geometric:<mean> | idle:<seconds>");
  flags.AddFlag("requests", "500", "number of invocations (per function in fleet mode)");
  flags.AddFlag("seed", "42", "experiment seed");
  flags.AddFlag("beta", "0", "policy beta (0 = derive from eviction k)");
  flags.AddFlag("pool", "12", "snapshot pool capacity C");
  flags.AddFlag("w", "0", "max checkpoint request W (0 = per-family default)");
  flags.AddFlag("explore-budget", "0",
                "stop-condition: freeze after this many requests (0 = W+100)");
  flags.AddFlag("engine", "criu", "checkpoint engine: criu | delta");
  flags.AddFlag("fleet", "0",
                "deploy this many functions (cycling the evaluation set) and run "
                "them as parallel shards; 0 = single-function mode");
  flags.AddFlag("platform", "0",
                "deploy this many evaluation functions into one shared control "
                "plane and run a closed loop; 0 = single-function mode");
  flags.AddFlag("threads", "0",
                "fleet shard threads (0 = hardware concurrency); results are "
                "bit-identical for any value");
  flags.AddSwitch("pin-threads",
                  "pin fleet shard threads to cores (Linux; scheduling-only, "
                  "results are bit-identical with or without)");
  flags.AddFlag("slots", "4", "fleet: worker slots per function");
  flags.AddFlag("exploring", "1", "fleet: exploring slots per function");
  flags.AddFlag("csv", "", "write per-request records to this CSV file");
  flags.AddFlag("summary-csv", "",
                "single mode: write key,value summary (incl. fault/recovery "
                "counters) to this CSV file");
  flags.AddFlag("trace-out", "",
                "write worker-lifecycle spans as Chrome trace JSON to this file "
                "(open in chrome://tracing)");
  flags.AddFlag("metrics-out", "",
                "write counters/gauges/histograms as JSON to this file");
  flags.AddFlag("fault-rate", "0",
                "transient failure probability per store/db op, in [0,1]");
  flags.AddFlag("fault-corrupt", "0",
                "probability a stored blob gets one bit flipped, in [0,1]");
  flags.AddFlag("fault-torn", "0",
                "probability a put is torn (half-written + failed), in [0,1]");
  flags.AddFlag("fault-outage", "",
                "outage windows 'start:end[@store|db]' in seconds, comma-separated");
  flags.AddFlag("fault-latency", "",
                "latency spikes 'start:end:ms' (seconds, extra ms), comma-separated");
  flags.AddFlag("fault-seed", "0", "extra seed folded into the fault streams");
  flags.AddFlag("fault-chunk-corrupt", "0",
                "dedup store: probability a stored chunk gets one bit flipped "
                "after a successful put, in [0,1]");
  flags.AddFlag("fault-manifest-corrupt", "0",
                "dedup store: probability a snapshot manifest gets one bit "
                "flipped after a successful put, in [0,1]");
  flags.AddFlag("store", "flat",
                "snapshot store build: flat (compatibility adapter over the "
                "object store) | dedup (content-addressed chunks; digests are "
                "bit-identical either way)");
  flags.AddFlag("chunk-size", "4096",
                "dedup store: fixed cut size / CDC target average, in bytes");
  flags.AddSwitch("cdc",
                  "dedup store: content-defined chunk boundaries (Gear rolling "
                  "hash) instead of fixed-size cuts");
  flags.AddSwitch("lazy-restore",
                  "dedup store: record-then-prefetch restores (REAP-style); "
                  "digest-neutral, changes only physical fetch counters");
  flags.AddSwitch("service",
                  "run the live orchestrator service: all worker-lifecycle "
                  "operations go over its wire format (digest-neutral)");
  flags.AddFlag("service-shards", "4", "service mode: shard threads");
  flags.AddFlag("service-batch", "16",
                "service mode: deferred observations per group-commit batch");
  flags.AddFlag("flush-interval", "5",
                "service mode: max simulated-time age (ms) of a deferred "
                "observation before its batch flushes");
  flags.AddFlag("journal-dir", "",
                "service mode: directory for per-slot write-ahead observation "
                "journals (created if missing; empty disables journaling)");
  flags.AddFlag("shed-deadline", "0",
                "service mode: host-time budget (ms) for enqueueing a start "
                "decision before it is shed with kResourceExhausted; 0 blocks");
  flags.AddFlag("crash-plan", "",
                "service mode: scheduled shard crashes 'shard:op:stage', "
                "comma-separated; stage is enqueue, mid-batch, or pre-truncate "
                "(errors if a named shard does not exist)");
  flags.AddFlag("stall-plan", "",
                "service mode: scheduled shard stalls 'shard:op:wall_ms', "
                "comma-separated");
  flags.AddFlag("retention", "all",
                "fleet mode: per-function detail kept in the merged report — "
                "all (bit-identical to collect-then-merge) | top-latency "
                "(K slowest by median) | reservoir (deterministic K-sample); "
                "digests cover ALL functions in every mode");
  flags.AddFlag("retention-k", "64",
                "fleet mode: per-function reports kept under a bounded "
                "--retention mode");
  flags.AddFlag("arrival-mix", "steady",
                "fleet mode: request-volume mix across deployments — steady "
                "(homogeneous) | diurnal | bursty | multi-tenant");
  flags.AddFlag("sim-checkpoint-dir", "",
                "write crash-consistent simulation checkpoints to this "
                "directory (created if missing; empty disables)");
  flags.AddFlag("sim-checkpoint-every", "1",
                "fleet mode: completed deployments between checkpoint frames");
  flags.AddSwitch("resume",
                  "resume from the checkpoint in --sim-checkpoint-dir (same "
                  "experiment only; digest matches an uninterrupted run)");
  flags.AddSwitch("histogram", "print latency histograms to stdout");
  flags.AddSwitch("no-noise", "disable client input-size noise");
  flags.AddSwitch("no-state-cache",
                  "disable the decoded policy-state cache (digest-neutral)");
  flags.AddSwitch("list", "list benchmarks and exit");
  flags.AddSwitch("help", "show usage");

  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.UsageText("pronghorn_sim").c_str());
    return 2;
  }
  if (!flags.positional().empty()) {
    // Everything pronghorn_sim understands is a flag; a stray positional is a
    // typo (e.g. a value that lost its `--name`) and must not be ignored.
    std::fprintf(stderr, "error: unexpected argument '%s'\n%s",
                 flags.positional().front().c_str(),
                 flags.UsageText("pronghorn_sim").c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.UsageText("pronghorn_sim").c_str());
    return 0;
  }
  if (flags.GetBool("list").value_or(false)) {
    for (const auto& p : WorkloadRegistry::Default().profiles()) {
      std::printf("%-14s %-5s %s%s\n", p.name.c_str(),
                  std::string(RuntimeFamilyName(p.family)).c_str(),
                  p.io_bound ? "io-bound" : "compute-bound",
                  p.auxiliary ? " (auxiliary)" : "");
    }
    return 0;
  }

  auto requests = flags.GetInt("requests");
  auto seed = flags.GetInt("seed");
  if (!requests.ok() || !seed.ok() || *requests <= 0) {
    return Fail(InvalidArgumentError("--requests and --seed must be positive ints"));
  }
  auto common = ParseCommonSimOptions(flags);
  if (!common.ok()) {
    return Fail(common.status());
  }

  auto fleet_size = flags.GetInt("fleet");
  auto platform_size = flags.GetInt("platform");
  if (!fleet_size.ok() || *fleet_size < 0 || !platform_size.ok() ||
      *platform_size < 0) {
    return Fail(InvalidArgumentError("--fleet and --platform must be non-negative"));
  }
  if (*fleet_size > 0 && *platform_size > 0) {
    return Fail(InvalidArgumentError("--fleet and --platform are mutually exclusive"));
  }
  if (common->retention.mode != ReportRetention::kAll && *fleet_size == 0) {
    return Fail(InvalidArgumentError(
        "--retention modes other than 'all' apply to --fleet runs"));
  }
  if (*fleet_size > 0) {
    return RunFleet(flags, *common, static_cast<uint64_t>(*requests));
  }
  if (*platform_size > 0) {
    return RunPlatform(flags, *common, static_cast<uint64_t>(*requests));
  }
  return RunSingle(flags, *common, static_cast<uint64_t>(*requests));
}
