// pronghorn_sim: command-line driver for the simulator.
//
// Runs one benchmark under one policy and eviction regime, prints a summary,
// and optionally exports the per-request records as CSV (the artifact's
// results/ format) for external plotting.
//
//   pronghorn_sim --benchmark DynamicHTML --policy request-centric \
//                 --eviction 1 --requests 500 --seed 42 --csv out.csv
//
// Policies: cold | after-first | request-centric | stop-condition
// Eviction: integer k (every-k), "geometric:<mean>", or "idle:<seconds>".

#include <cstdio>
#include <memory>
#include <string>

#include "src/common/flags.h"
#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/core/stop_condition_policy.h"
#include "src/platform/function_simulation.h"
#include "src/platform/report_io.h"

using namespace pronghorn;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

Result<std::unique_ptr<EvictionModel>> MakeEviction(const std::string& spec,
                                                    uint64_t seed) {
  if (spec.rfind("geometric:", 0) == 0) {
    const double mean = std::strtod(spec.c_str() + 10, nullptr);
    PRONGHORN_ASSIGN_OR_RETURN(auto model, GeometricEviction::Create(mean, seed));
    return std::unique_ptr<EvictionModel>(std::move(model));
  }
  if (spec.rfind("idle:", 0) == 0) {
    const double seconds = std::strtod(spec.c_str() + 5, nullptr);
    if (seconds <= 0) {
      return InvalidArgumentError("idle timeout must be positive");
    }
    return std::unique_ptr<EvictionModel>(
        std::make_unique<IdleTimeoutEviction>(Duration::Seconds(seconds)));
  }
  const uint64_t k = std::strtoull(spec.c_str(), nullptr, 10);
  PRONGHORN_ASSIGN_OR_RETURN(auto model, EveryKRequestsEviction::Create(k));
  return std::unique_ptr<EvictionModel>(std::move(model));
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("benchmark", "DynamicHTML", "workload name (see --list)");
  flags.AddFlag("policy", "request-centric",
                "cold | after-first | request-centric | stop-condition");
  flags.AddFlag("eviction", "1", "k | geometric:<mean> | idle:<seconds>");
  flags.AddFlag("requests", "500", "number of invocations");
  flags.AddFlag("seed", "42", "experiment seed");
  flags.AddFlag("beta", "0", "policy beta (0 = derive from eviction k)");
  flags.AddFlag("pool", "12", "snapshot pool capacity C");
  flags.AddFlag("w", "0", "max checkpoint request W (0 = per-family default)");
  flags.AddFlag("explore-budget", "0",
                "stop-condition: freeze after this many requests (0 = W+100)");
  flags.AddFlag("engine", "criu", "checkpoint engine: criu | delta");
  flags.AddFlag("csv", "", "write per-request records to this CSV file");
  flags.AddSwitch("no-noise", "disable client input-size noise");
  flags.AddSwitch("list", "list benchmarks and exit");
  flags.AddSwitch("help", "show usage");

  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.UsageText("pronghorn_sim").c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.UsageText("pronghorn_sim").c_str());
    return 0;
  }
  if (flags.GetBool("list").value_or(false)) {
    for (const auto& p : WorkloadRegistry::Default().profiles()) {
      std::printf("%-14s %-5s %s%s\n", p.name.c_str(),
                  std::string(RuntimeFamilyName(p.family)).c_str(),
                  p.io_bound ? "io-bound" : "compute-bound",
                  p.auxiliary ? " (auxiliary)" : "");
    }
    return 0;
  }

  const std::string benchmark = *flags.GetString("benchmark");
  auto profile = WorkloadRegistry::Default().Find(benchmark);
  if (!profile.ok()) {
    return Fail(profile.status());
  }

  auto requests = flags.GetInt("requests");
  auto seed = flags.GetInt("seed");
  if (!requests.ok() || !seed.ok() || *requests <= 0) {
    return Fail(InvalidArgumentError("--requests and --seed must be positive ints"));
  }

  const std::string eviction_spec = *flags.GetString("eviction");
  auto eviction = MakeEviction(eviction_spec, static_cast<uint64_t>(*seed));
  if (!eviction.ok()) {
    return Fail(eviction.status());
  }

  PolicyConfig config;
  const uint64_t eviction_k = std::strtoull(eviction_spec.c_str(), nullptr, 10);
  config.beta = static_cast<uint32_t>(*flags.GetInt("beta"));
  if (config.beta == 0) {
    config.beta = eviction_k > 0 ? static_cast<uint32_t>(eviction_k) : 4;
  }
  config.pool_capacity = static_cast<uint32_t>(*flags.GetInt("pool"));
  config.max_checkpoint_request = static_cast<uint32_t>(*flags.GetInt("w"));
  if (config.max_checkpoint_request == 0) {
    config.max_checkpoint_request =
        (*profile)->family == RuntimeFamily::kJvm ? 200 : 100;
  }
  if (Status s = config.Validate(); !s.ok()) {
    return Fail(s);
  }

  const std::string policy_name = *flags.GetString("policy");
  std::unique_ptr<OrchestrationPolicy> owned_policy;
  std::unique_ptr<RequestCentricPolicy> inner_policy;
  if (policy_name == "cold") {
    owned_policy = std::make_unique<ColdStartPolicy>(config);
  } else if (policy_name == "after-first") {
    owned_policy = std::make_unique<CheckpointAfterFirstPolicy>(config);
  } else if (policy_name == "request-centric" || policy_name == "stop-condition") {
    auto rc = RequestCentricPolicy::Create(config);
    if (!rc.ok()) {
      return Fail(rc.status());
    }
    if (policy_name == "request-centric") {
      owned_policy = std::make_unique<RequestCentricPolicy>(*std::move(rc));
    } else {
      inner_policy = std::make_unique<RequestCentricPolicy>(*std::move(rc));
      uint64_t budget = static_cast<uint64_t>(*flags.GetInt("explore-budget"));
      if (budget == 0) {
        budget = config.max_checkpoint_request + 100;  // The paper's bound.
      }
      owned_policy = std::make_unique<StopConditionPolicy>(*inner_policy, budget);
    }
  } else {
    return Fail(InvalidArgumentError("unknown policy '" + policy_name + "'"));
  }

  SimulationOptions options;
  options.seed = static_cast<uint64_t>(*seed);
  options.input_noise = !flags.GetBool("no-noise").value_or(false);
  const std::string engine_name = *flags.GetString("engine");
  if (engine_name == "delta") {
    options.engine_kind = EngineKind::kDelta;
  } else if (engine_name != "criu") {
    return Fail(InvalidArgumentError("unknown engine '" + engine_name + "'"));
  }
  FunctionSimulation sim(**profile, WorkloadRegistry::Default(), *owned_policy,
                         **eviction, options);
  auto report = sim.RunClosedLoop(static_cast<uint64_t>(*requests));
  if (!report.ok()) {
    return Fail(report.status());
  }

  std::printf("%s policy=%s eviction=%s\n%s\n", benchmark.c_str(), policy_name.c_str(),
              eviction_spec.c_str(), SummarizeReport(*report).c_str());

  const std::string csv_path = *flags.GetString("csv");
  if (!csv_path.empty()) {
    if (Status s = WriteRecordsCsv(*report, csv_path); !s.ok()) {
      return Fail(s);
    }
    std::printf("wrote %zu records to %s\n", report->records.size(), csv_path.c_str());
  }
  return 0;
}
