// pronghorn_trace: synthetic Azure-style trace generator.
//
// Emits an invocation trace CSV consumable by the replay pipeline
// (examples/trace_replay, PlatformSimulation, FunctionSimulation::RunTrace).
//
//   pronghorn_trace --functions MST:85,Thumbnailer:75,HTMLRendering:65 \
//                   --window-s 900 --windows 4 --seed 7 --out trace.csv

#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/trace/trace_generator.h"

using namespace pronghorn;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// Parses "name:percentile,name:percentile,...".
Result<std::vector<std::pair<std::string, double>>> ParseFunctions(
    const std::string& spec) {
  std::vector<std::pair<std::string, double>> out;
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(',', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      continue;
    }
    const size_t colon = entry.find(':');
    if (colon == std::string::npos || colon == 0) {
      return InvalidArgumentError("bad --functions entry '" + entry +
                                  "', expected name:percentile");
    }
    char* parse_end = nullptr;
    const double percentile = std::strtod(entry.c_str() + colon + 1, &parse_end);
    if (parse_end != entry.c_str() + entry.size()) {
      return InvalidArgumentError("bad percentile in '" + entry + "'");
    }
    out.emplace_back(entry.substr(0, colon), percentile);
  }
  if (out.empty()) {
    return InvalidArgumentError("--functions must name at least one function");
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("functions", "MST:85,Thumbnailer:75,HTMLRendering:65",
                "comma-separated name:popularity-percentile pairs");
  flags.AddFlag("window-s", "900", "window length in seconds");
  flags.AddFlag("windows", "1", "number of consecutive windows");
  flags.AddFlag("seed", "7", "generator seed");
  flags.AddFlag("mu", "2.5", "log10 daily-invocations mean (Azure model)");
  flags.AddFlag("sigma", "1.5", "log10 daily-invocations sigma");
  flags.AddFlag("burstiness", "0.4", "arrival burstiness (lognormal sigma)");
  flags.AddFlag("out", "", "output CSV path (stdout when empty)");
  flags.AddSwitch("help", "show usage");

  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.UsageText("pronghorn_trace").c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.UsageText("pronghorn_trace").c_str());
    return 0;
  }

  auto functions = ParseFunctions(*flags.GetString("functions"));
  if (!functions.ok()) {
    return Fail(functions.status());
  }
  const int64_t window_s = *flags.GetInt("window-s");
  const int64_t windows = *flags.GetInt("windows");
  if (window_s <= 0 || windows <= 0) {
    return Fail(InvalidArgumentError("--window-s and --windows must be positive"));
  }

  AzureTraceModelParams params;
  params.log10_daily_mu = *flags.GetDouble("mu");
  params.log10_daily_sigma = *flags.GetDouble("sigma");
  params.burstiness = *flags.GetDouble("burstiness");
  const AzureTraceModel model(params);
  TraceGenerator generator(model, static_cast<uint64_t>(*flags.GetInt("seed")));

  // Concatenate `windows` consecutive windows, shifting each by its offset.
  InvocationTrace trace;
  std::vector<TraceRecord> merged;
  for (int64_t w = 0; w < windows; ++w) {
    auto window_trace = generator.GenerateTrace(
        *functions, Duration::Seconds(static_cast<double>(window_s)));
    if (!window_trace.ok()) {
      return Fail(window_trace.status());
    }
    const int64_t offset_us = w * window_s * 1000000;
    for (const TraceRecord& record : window_trace->records()) {
      merged.push_back(TraceRecord{
          record.function, TimePoint::FromMicros(record.arrival.ToMicros() + offset_us)});
    }
  }
  for (TraceRecord& record : merged) {
    if (Status s = trace.Append(std::move(record)); !s.ok()) {
      return Fail(s);
    }
  }

  const std::string out_path = *flags.GetString("out");
  if (out_path.empty()) {
    std::printf("%s", trace.ToCsv().c_str());
  } else {
    if (Status s = trace.WriteCsv(out_path); !s.ok()) {
      return Fail(s);
    }
    std::fprintf(stderr, "wrote %zu invocations over %lld window(s) to %s\n",
                 trace.size(), static_cast<long long>(windows), out_path.c_str());
  }
  return 0;
}
