#!/usr/bin/env python3
"""Validate pronghorn_sim --trace-out output against tools/trace_schema.json.

Python 3 standard library only (no jsonschema dependency): this implements
exactly the subset of JSON Schema the checked-in schema uses — type checks,
enums, minimums, required keys, and the per-phase conditional requirements —
plus the x-required-span-names / x-required-instant-names extensions that
encode the observability acceptance bar (all seven worker-lifecycle phases
and the recovery instants must be present).

Usage: validate_trace.py [--schema-only] [--require-span NAME]...
       <trace.json> [<schema.json>]
Exits 0 when the trace validates, 1 with a report on stderr otherwise.
--schema-only skips the x-required-* presence checks: a healthy run has no
degraded_start spans or retry instants to require (CI validates a faulty
run, where all of them must appear). --require-span adds an extra span name
that must be present (repeatable) — CI uses it to assert dedup-store runs
emit "chunk_fetch" spans without requiring them of flat-store traces.
"""

import json
import os
import sys

TYPE_CHECKS = {
    "object": lambda v: isinstance(v, dict),
    "array": lambda v: isinstance(v, list),
    "string": lambda v: isinstance(v, str),
    # bool is an int subclass in Python; reject it explicitly.
    "integer": lambda v: isinstance(v, int) and not isinstance(v, bool),
    "number": lambda v: isinstance(v, (int, float)) and not isinstance(v, bool),
}


def check(value, schema, path, errors):
    """Validates `value` against the schema subset; appends to `errors`."""
    expected = schema.get("type")
    if expected is not None and not TYPE_CHECKS[expected](value):
        errors.append(f"{path}: expected {expected}, got {type(value).__name__}")
        return
    if "enum" in schema and value not in schema["enum"]:
        errors.append(f"{path}: {value!r} not in {schema['enum']}")
    if "const" in schema and value != schema["const"]:
        errors.append(f"{path}: {value!r} != {schema['const']!r}")
    if "minimum" in schema and isinstance(value, (int, float)):
        if value < schema["minimum"]:
            errors.append(f"{path}: {value} < minimum {schema['minimum']}")
    if isinstance(value, dict):
        for key in schema.get("required", []):
            if key not in value:
                errors.append(f"{path}: missing required key '{key}'")
        for key, sub in schema.get("properties", {}).items():
            if key in value:
                check(value[key], sub, f"{path}.{key}", errors)
        for clause in schema.get("allOf", []):
            condition = clause.get("if", {})
            if matches(value, condition):
                check(value, clause.get("then", {}), path, errors)
    if isinstance(value, list) and "items" in schema:
        for i, item in enumerate(value):
            check(item, schema["items"], f"{path}[{i}]", errors)


def matches(value, condition):
    """True when `value` satisfies an `if` condition (silent trial check)."""
    trial = []
    check(value, condition, "", trial)
    return not trial


def main(argv):
    schema_only = "--schema-only" in argv[1:]
    required_spans = []
    paths = []
    args = [a for a in argv[1:] if a != "--schema-only"]
    i = 0
    while i < len(args):
        if args[i] == "--require-span":
            if i + 1 >= len(args):
                print(__doc__, file=sys.stderr)
                return 2
            required_spans.append(args[i + 1])
            i += 2
        else:
            paths.append(args[i])
            i += 1
    if len(paths) not in (1, 2):
        print(__doc__, file=sys.stderr)
        return 2
    trace_path = paths[0]
    schema_path = (
        paths[1]
        if len(paths) == 2
        else os.path.join(os.path.dirname(os.path.abspath(argv[0])), "trace_schema.json")
    )
    with open(schema_path) as f:
        schema = json.load(f)
    with open(trace_path) as f:
        trace = json.load(f)

    errors = []
    check(trace, schema, "$", errors)

    events = trace.get("traceEvents", [])
    spans = {e.get("name") for e in events if e.get("ph") == "X"}
    instants = {e.get("name") for e in events if e.get("ph") == "i"}
    if not schema_only:
        for name in schema.get("x-required-span-names", []):
            if name not in spans:
                errors.append(f"$.traceEvents: no 'X' span named '{name}'")
        for name in schema.get("x-required-instant-names", []):
            if name not in instants:
                errors.append(f"$.traceEvents: no 'i' instant named '{name}'")
    for name in required_spans:
        if name not in spans:
            errors.append(f"$.traceEvents: no 'X' span named '{name}'")

    if errors:
        for error in errors[:40]:
            print(f"FAIL {error}", file=sys.stderr)
        if len(errors) > 40:
            print(f"... and {len(errors) - 40} more", file=sys.stderr)
        return 1
    counts = {"X": 0, "i": 0, "M": 0}
    for event in events:
        counts[event["ph"]] += 1
    print(
        f"OK {trace_path}: {counts['X']} spans, {counts['i']} instants, "
        f"{counts['M']} metadata events, {trace['droppedEvents']} dropped; "
        f"lifecycle phases {sorted(spans & set(schema['x-required-span-names']))}"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
