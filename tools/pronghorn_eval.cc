// pronghorn_eval: full-evaluation runner (artifact parity).
//
// Reproduces the paper artifact's `run.sh evaluation` flow: runs every
// (benchmark x strategy x eviction-rate) combination of §5.1 and writes one
// per-request CSV per combination into an output directory, plus a
// summary.csv with the medians and improvement percentages that Figures 4/5
// aggregate. The CSVs use the same schema as tools/pronghorn_sim --csv.
//
//   pronghorn_eval --out results --requests 500 --seed 91

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <string>

#include "src/common/flags.h"
#include "src/common/mathutil.h"
#include "src/core/baseline_policies.h"
#include "src/core/request_centric_policy.h"
#include "src/platform/report_io.h"
#include "src/platform/simulate.h"

using namespace pronghorn;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

struct Combo {
  std::string benchmark;
  std::string policy;
  uint32_t eviction_k = 0;
  double median_us = 0.0;
  double p90_us = 0.0;
  uint64_t checkpoints = 0;
  // Storage accounting (digest-excluded physical view; flat runs mirror
  // logical and leave the dedup ratio at 1).
  uint64_t store_logical_bytes = 0;
  uint64_t store_physical_bytes = 0;
  double store_dedup_ratio = 1.0;
};

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddFlag("out", "results", "output directory for CSV files");
  flags.AddFlag("requests", "500", "invocations per combination");
  flags.AddFlag("seed", "91", "experiment seed base");
  flags.AddSwitch("help", "show usage");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.UsageText("pronghorn_eval").c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false)) {
    std::printf("%s", flags.UsageText("pronghorn_eval").c_str());
    return 0;
  }

  const std::string out_dir = *flags.GetString("out");
  const uint64_t requests = static_cast<uint64_t>(*flags.GetInt("requests"));
  const uint64_t seed_base = static_cast<uint64_t>(*flags.GetInt("seed"));
  std::error_code ec;
  std::filesystem::create_directories(out_dir, ec);
  if (ec) {
    return Fail(InternalError("cannot create '" + out_dir + "': " + ec.message()));
  }

  const uint32_t eviction_rates[] = {1, 4, 20};
  std::vector<Combo> combos;

  for (const WorkloadProfile* profile : WorkloadRegistry::Default().EvaluationSet()) {
    for (uint32_t k : eviction_rates) {
      PolicyConfig config;
      config.beta = k;
      config.pool_capacity = 12;
      config.max_checkpoint_request =
          profile->family == RuntimeFamily::kJvm ? 200 : 100;
      const ColdStartPolicy cold(config);
      const CheckpointAfterFirstPolicy after_first(config);
      auto request_centric = RequestCentricPolicy::Create(config);
      if (!request_centric.ok()) {
        return Fail(request_centric.status());
      }

      for (const auto& [label, policy] :
           std::initializer_list<std::pair<const char*, const OrchestrationPolicy*>>{
               {"cold", &cold},
               {"after-first", &after_first},
               {"request-centric", &*request_centric}}) {
        // The unified entry point in its single-function configuration (one
        // worker slot, sub-seed = options.seed) replays the historical
        // FunctionSimulation bit-for-bit.
        SimOptions options;
        options.seed = seed_base + k;
        options.worker_slots = 1;
        options.exploring_slots = 1;
        options.eviction.kind = FleetEvictionSpec::Kind::kEveryK;
        options.eviction.k = k;
        SimFunctionSpec spec;
        spec.name = profile->name;
        spec.profile = profile;
        spec.policy = policy;
        spec.requests = requests;
        auto report = Simulate(WorkloadRegistry::Default(), SimTopology::kSingle,
                               std::span<const SimFunctionSpec>(&spec, 1), options);
        if (!report.ok()) {
          return Fail(report.status());
        }

        const std::string file = out_dir + "/" + profile->name + "_" + label +
                                 "_evict" + std::to_string(k) + ".csv";
        if (Status s = WriteRecordsCsv(report->flat(), file); !s.ok()) {
          return Fail(s);
        }
        const DistributionSummary summary = report->flat().LatencySummary();
        const StoreAccounting& store = report->flat().object_store;
        combos.push_back(Combo{profile->name, label, k, summary.Median(),
                               summary.Quantile(90), report->flat().checkpoints,
                               store.logical_bytes_stored,
                               store.physical.bytes_stored,
                               store.physical.DedupRatio()});
      }
      std::printf(".");
      std::fflush(stdout);
    }
  }
  std::printf("\n");

  // summary.csv: one row per combination plus improvement columns.
  const std::string summary_path = out_dir + "/summary.csv";
  std::ofstream summary(summary_path, std::ios::trunc);
  if (!summary) {
    return Fail(InternalError("cannot open " + summary_path));
  }
  summary << "benchmark,policy,eviction_k,median_us,p90_us,checkpoints,"
             "store_logical_bytes,store_physical_bytes,store_dedup_ratio,"
             "improvement_vs_after_first_pct\n";
  std::map<std::pair<std::string, uint32_t>, double> baseline_medians;
  for (const Combo& combo : combos) {
    if (combo.policy == "after-first") {
      baseline_medians[{combo.benchmark, combo.eviction_k}] = combo.median_us;
    }
  }
  std::map<uint32_t, std::vector<double>> winners;
  for (const Combo& combo : combos) {
    double improvement = 0.0;
    const auto it = baseline_medians.find({combo.benchmark, combo.eviction_k});
    if (it != baseline_medians.end() && it->second > 0.0) {
      improvement = (it->second - combo.median_us) / it->second * 100.0;
    }
    if (combo.policy == "request-centric" && improvement > 5.0) {
      winners[combo.eviction_k].push_back(improvement);
    }
    summary << combo.benchmark << ',' << combo.policy << ',' << combo.eviction_k << ','
            << combo.median_us << ',' << combo.p90_us << ',' << combo.checkpoints << ','
            << combo.store_logical_bytes << ',' << combo.store_physical_bytes << ','
            << combo.store_dedup_ratio << ',' << improvement << '\n';
  }
  summary.flush();

  std::printf("wrote %zu per-request CSVs and %s\n", combos.size(),
              summary_path.c_str());
  for (const auto& [k, improvements] : winners) {
    std::printf("eviction %2u: %zu/13 benchmarks improved >5%%, geomean %.1f%%\n", k,
                improvements.size(), GeometricMean(improvements));
  }
  std::printf("(paper: 9/13 better at eviction 1 with geomean 37.2%%; 22.5%% at 4; "
              "13.5%% at 20)\n");
  return 0;
}
