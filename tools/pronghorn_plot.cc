// pronghorn_plot: terminal viewer for per-request records CSVs (the files
// tools/pronghorn_sim --csv and tools/pronghorn_eval emit). Prints percentile
// tables, an ASCII latency density on a log axis, the CDF series the paper's
// figures plot, and the per-maturity medians behind Figure 1.
//
//   pronghorn_plot results/BFS_request-centric_evict1.csv [more.csv ...]

#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "src/common/flags.h"
#include "src/common/stats.h"
#include "src/platform/analysis.h"
#include "src/platform/report_io.h"

using namespace pronghorn;

namespace {

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

void ShowFile(const std::string& path, bool show_cdf, bool show_maturity) {
  auto records = ReadRecordsCsv(path);
  if (!records.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 records.status().ToString().c_str());
    return;
  }
  DistributionSummary summary;
  uint64_t checkpoints = 0;
  uint64_t lifetimes = 0;
  for (const RequestRecord& record : *records) {
    summary.Add(static_cast<double>(record.latency.ToMicros()));
    checkpoints += record.checkpoint_after ? 1 : 0;
    lifetimes += record.first_of_lifetime ? 1 : 0;
  }
  std::printf("%s\n", path.c_str());
  std::printf("  %zu requests, %llu lifetimes, %llu checkpoints\n", records->size(),
              static_cast<unsigned long long>(lifetimes),
              static_cast<unsigned long long>(checkpoints));
  if (summary.empty()) {
    return;
  }
  std::printf("  p10=%0.f p25=%.0f p50=%.0f p75=%.0f p90=%.0f p99=%.0f us\n",
              summary.Quantile(10), summary.Quantile(25), summary.Quantile(50),
              summary.Quantile(75), summary.Quantile(90), summary.Quantile(99));

  const double log_lo = std::floor(std::log10(std::max(summary.Quantile(1), 1.0)));
  const double log_hi = std::ceil(std::log10(std::max(summary.Quantile(99), 10.0)));
  LogHistogram histogram(log_lo, log_hi, 64);
  for (double v : summary.samples()) {
    histogram.Add(v);
  }
  std::printf("  density |%s| 1e%.0f..1e%.0f us (log axis)\n",
              histogram.ToAsciiArt(64).c_str(), log_lo, log_hi);

  if (show_cdf) {
    std::printf("  CDF:\n");
    for (const auto& point : summary.Cdf(20)) {
      const int bar = static_cast<int>(point.probability * 50);
      std::printf("    %9.0f us  %5.2f %s\n", point.value, point.probability,
                  std::string(static_cast<size_t>(bar), '#').c_str());
    }
  }
  if (show_maturity) {
    std::printf("  median latency by JIT maturity (request number):\n");
    const auto rows = LatencyByMaturity(*records);
    // Print at most 20 evenly spaced rows.
    const size_t step = std::max<size_t>(1, rows.size() / 20);
    for (size_t i = 0; i < rows.size(); i += step) {
      std::printf("    request %5llu  median %9.0f us  (%llu samples)\n",
                  static_cast<unsigned long long>(rows[i].request_number),
                  rows[i].median_latency_us,
                  static_cast<unsigned long long>(rows[i].samples));
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  flags.AddSwitch("cdf", "print the 20-point CDF series");
  flags.AddSwitch("maturity", "print median latency by request number");
  flags.AddSwitch("help", "show usage");
  if (Status s = flags.Parse(argc - 1, argv + 1); !s.ok()) {
    std::fprintf(stderr, "%s\n%s", s.ToString().c_str(),
                 flags.UsageText("pronghorn_plot <records.csv>...").c_str());
    return 2;
  }
  if (flags.GetBool("help").value_or(false) || flags.positional().empty()) {
    std::printf("%s", flags.UsageText("pronghorn_plot <records.csv>...").c_str());
    return flags.positional().empty() ? 2 : 0;
  }
  for (const std::string& path : flags.positional()) {
    ShowFile(path, flags.GetBool("cdf").value_or(false),
             flags.GetBool("maturity").value_or(false));
  }
  return 0;
}
